// Package faults is the repo's deterministic fault-injection layer: a
// seedable, registry-based injector whose named injection points are
// planted at the seams where a production segmentation service actually
// breaks — frame decode, pipeline stage hand-offs, pool admission, the
// S-SLIC subset-pass loop, and the hardware model's DRAM accounting.
//
// The design goals, in order:
//
//   - Zero cost when disabled. Every planted point is a single atomic
//     pointer load returning nil; no map lookup, no allocation, no lock.
//     Fault injection is a build-in, not a build-out: the hooks ship in
//     production binaries and stay free until an injector is enabled.
//   - Deterministic schedules. Each point owns a splitmix64 stream
//     seeded from (injector seed, point name), so a given seed replays
//     the same fire/no-fire decision sequence per point regardless of
//     what other points do. `Every` makes a point fire on a fixed call
//     cadence with no randomness at all — the chaos suite's tool for
//     byte-reproducible failure schedules.
//   - Explicit actions. A firing point can add latency, return an
//     injected (transient, retryable) error, or panic — the three
//     failure shapes the robustness layer must absorb: slowness,
//     failure, and crash.
//
// Enabling is process-wide (Enable/Disable) because the points are
// planted in packages that predate any request context (imgio decode,
// the DRAM model). Tests that enable an injector must not run in
// parallel with tests that assume a fault-free process.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The planted injection points. Parse rejects unknown names so a typo'd
// -faults spec fails at startup instead of silently injecting nothing.
const (
	// PointDecode fires inside imgio.DecodeImageLimit, before the format
	// sniff — a failing or slow frame decoder.
	PointDecode = "imgio.decode"
	// PointPoolSubmit fires in pipeline.(*Pool).Submit before admission —
	// a failing or slow admission layer.
	PointPoolSubmit = "pool.submit"
	// PointPoolRun fires in the pool worker at the top of each
	// segmentation attempt, inside the worker's panic recover — an
	// error action is the transient per-frame fault the retry layer
	// absorbs; a panic action simulates a crashing worker and surfaces
	// as ErrSegmentPanic, never a process crash.
	PointPoolRun = "pool.run"
	// PointPipelineSource, PointPipelineSegment and PointPipelineSink
	// fire at the streaming pipeline's stage hand-offs.
	PointPipelineSource  = "pipeline.source"
	PointPipelineSegment = "pipeline.segment"
	PointPipelineSink    = "pipeline.sink"
	// PointSubsetPass fires at the top of every S-SLIC subset pass (PPA
	// and CPA) — a fault inside the core compute loop.
	PointSubsetPass = "sslic.pass"
	// PointTile fires at the start of every tile band within a PPA
	// cluster-update pass — one firing per band per pass, concurrent with
	// the other bands when TileWorkers > 1. A failing band fails the pass
	// deterministically (lowest band index wins).
	PointTile = "sslic.tile"
	// PointDRAM fires in the DRAM model's transfer accounting. Record
	// returns no error, so only the latency and panic actions apply.
	PointDRAM = "hw.dram"
	// PointTenantAdmit fires at the top of the multi-tenant fair
	// admission queue, before any quota is checked or slot reserved —
	// a failing or slow admission control plane. An error action is
	// reported to the client as a transient 503.
	PointTenantAdmit = "tenant.admit"
)

// KnownPoints lists every planted point, sorted, for spec validation
// and -faults usage text.
func KnownPoints() []string {
	pts := []string{
		PointDecode, PointPoolSubmit, PointPoolRun,
		PointPipelineSource, PointPipelineSegment, PointPipelineSink,
		PointSubsetPass, PointTile, PointDRAM, PointTenantAdmit,
	}
	sort.Strings(pts)
	return pts
}

// ErrInjected is the sentinel every injected error wraps. Injected
// errors are transient by construction — the failure disappears when
// the schedule stops firing — which is what makes them the retry
// layer's classifier: IsTransient(err) == errors.Is(err, ErrInjected).
var ErrInjected = errors.New("fault injected")

// InjectedError is the concrete error a firing point returns.
type InjectedError struct {
	// Point is the injection point that fired.
	Point string
	// Msg is the configured message.
	Msg string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: %s at %s: %s", ErrInjected.Error(), e.Point, e.Msg)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// IsTransient reports whether err is (or wraps) an injected fault —
// the class the pool's bounded retry-with-backoff is allowed to retry.
func IsTransient(err error) bool { return errors.Is(err, ErrInjected) }

// PointConfig is one injection point's schedule and action.
type PointConfig struct {
	// Probability in [0, 1] fires the point on each call with this
	// chance, drawn from the point's seeded stream.
	Probability float64
	// Every fires the point deterministically on every Nth call
	// (1 = every call). When set it takes precedence over Probability.
	Every int
	// MaxFires bounds the total number of fires; 0 is unlimited.
	MaxFires int
	// Latency is slept on fire, before the error/panic action — the
	// "slow dependency" shape. Applies alone when no other action is set.
	Latency time.Duration
	// ErrMsg, when non-empty, makes the fire return an InjectedError.
	ErrMsg string
	// Panic makes the fire panic — the input the circuit breaker and
	// the pool's panic isolation exist for.
	Panic bool
}

// point is one named point's live state.
type point struct {
	cfg   PointConfig
	calls atomic.Int64
	fires atomic.Int64

	mu  sync.Mutex // guards rng
	rng uint64
}

// Injector holds a set of configured points. The zero value is not
// usable; construct with New or NewFromSpec.
type Injector struct {
	seed   int64
	mu     sync.RWMutex
	points map[string]*point
}

// New returns an injector with no points configured. All decisions
// derive from seed, so two injectors with equal seeds and equal point
// configurations replay identical schedules.
func New(seed int64) *Injector {
	return &Injector{seed: seed, points: map[string]*point{}}
}

// Set configures (or reconfigures) one point. Reconfiguring resets the
// point's call/fire counters and random stream.
func (in *Injector) Set(name string, cfg PointConfig) {
	h := fnv.New64a()
	h.Write([]byte(name))
	pt := &point{cfg: cfg, rng: uint64(in.seed) ^ h.Sum64()}
	if pt.rng == 0 {
		pt.rng = 0x9E3779B97F4A7C15
	}
	in.mu.Lock()
	in.points[name] = pt
	in.mu.Unlock()
}

// splitmix64 advances the state and returns the next value — a tiny,
// well-mixed generator that needs only one uint64 of state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Fire runs one call through the named point: it decides per the
// point's schedule, then applies latency, error or panic. Unconfigured
// points (and non-firing calls) return nil.
func (in *Injector) Fire(name string) error {
	in.mu.RLock()
	pt := in.points[name]
	in.mu.RUnlock()
	if pt == nil {
		return nil
	}
	n := pt.calls.Add(1)
	cfg := pt.cfg
	fire := false
	switch {
	case cfg.Every > 0:
		fire = n%int64(cfg.Every) == 0
	case cfg.Probability > 0:
		pt.mu.Lock()
		fire = float64(splitmix64(&pt.rng)>>11)/(1<<53) < cfg.Probability
		pt.mu.Unlock()
	}
	if !fire {
		return nil
	}
	if f := pt.fires.Add(1); cfg.MaxFires > 0 && f > int64(cfg.MaxFires) {
		pt.fires.Add(-1) // suppressed: the budget is spent
		return nil
	}
	if cfg.Latency > 0 {
		time.Sleep(cfg.Latency)
	}
	if cfg.Panic {
		panic(fmt.Sprintf("faults: injected panic at %s", name))
	}
	if cfg.ErrMsg != "" {
		return &InjectedError{Point: name, Msg: cfg.ErrMsg}
	}
	return nil
}

// PointStats is one point's observed activity.
type PointStats struct {
	// Calls counts every pass through the point; Fires the subset where
	// the schedule triggered the action.
	Calls, Fires int64
}

// Stats snapshots every configured point's counters — the injector's
// own observability, mirrorable onto a telemetry registry by callers.
func (in *Injector) Stats() map[string]PointStats {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make(map[string]PointStats, len(in.points))
	for name, pt := range in.points {
		out[name] = PointStats{Calls: pt.calls.Load(), Fires: pt.fires.Load()}
	}
	return out
}

// active is the process-wide injector the planted hooks consult. nil
// (the default) means fault injection is off and Fire is a single
// atomic load.
var active atomic.Pointer[Injector]

// Enable installs in as the process-wide injector. Passing nil disables.
func Enable(in *Injector) {
	active.Store(in)
}

// Disable turns fault injection off.
func Disable() { active.Store(nil) }

// Active returns the installed injector, or nil when disabled.
func Active() *Injector { return active.Load() }

// Fire is the hook planted at every injection point: with no injector
// enabled it is one atomic pointer load and a nil check.
func Fire(name string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.Fire(name)
}

// Parse reads a fault schedule spec of the form
//
//	point:action[,action...][;point:action...]
//
// where each action is one of
//
//	prob=F        fire with probability F per call (seeded stream)
//	every=N       fire on every Nth call (deterministic)
//	max=N         stop after N fires
//	latency=DUR   sleep DUR on fire (Go duration syntax, e.g. 50ms)
//	error[=MSG]   return an injected transient error
//	panic         panic
//
// Example: "sslic.pass:error,prob=0.2;pool.submit:latency=50ms,every=10".
// Unknown point names and malformed actions are errors.
func Parse(spec string) (map[string]PointConfig, error) {
	known := map[string]bool{}
	for _, p := range KnownPoints() {
		known[p] = true
	}
	out := map[string]PointConfig{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, actions, ok := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: entry %q: want point:action[,action...]", entry)
		}
		if !known[name] {
			return nil, fmt.Errorf("faults: unknown point %q (known: %s)", name, strings.Join(KnownPoints(), ", "))
		}
		var cfg PointConfig
		for _, act := range strings.Split(actions, ",") {
			act = strings.TrimSpace(act)
			if act == "" {
				continue
			}
			key, val, _ := strings.Cut(act, "=")
			var err error
			switch key {
			case "prob":
				cfg.Probability, err = strconv.ParseFloat(val, 64)
				if err == nil && (cfg.Probability < 0 || cfg.Probability > 1) {
					err = fmt.Errorf("out of [0, 1]")
				}
			case "every":
				cfg.Every, err = strconv.Atoi(val)
				if err == nil && cfg.Every < 1 {
					err = fmt.Errorf("want >= 1")
				}
			case "max":
				cfg.MaxFires, err = strconv.Atoi(val)
			case "latency":
				cfg.Latency, err = time.ParseDuration(val)
			case "error":
				if val == "" {
					val = "injected error"
				}
				cfg.ErrMsg = val
			case "panic":
				cfg.Panic = true
			default:
				err = fmt.Errorf("unknown action")
			}
			if err != nil {
				return nil, fmt.Errorf("faults: point %s: action %q: %v", name, act, err)
			}
		}
		if cfg.Probability == 0 && cfg.Every == 0 {
			return nil, fmt.Errorf("faults: point %s: no schedule (need prob= or every=)", name)
		}
		if cfg.Latency == 0 && cfg.ErrMsg == "" && !cfg.Panic {
			return nil, fmt.Errorf("faults: point %s: no action (need latency=, error or panic)", name)
		}
		out[name] = cfg
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: empty spec")
	}
	return out, nil
}

// NewFromSpec parses spec and returns a ready injector — the -faults
// flag implementation shared by sslic-serve and sslic-video.
func NewFromSpec(seed int64, spec string) (*Injector, error) {
	cfgs, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	in := New(seed)
	for name, cfg := range cfgs {
		in.Set(name, cfg)
	}
	return in, nil
}
