package wire

import (
	"bytes"
	"testing"

	"sslic/internal/imgio"
)

// labelMapFromBytes deterministically builds a small label map from fuzz
// input: two dimension bytes, then labels drawn from the remaining data
// (zigzag so negatives appear, Unassigned included).
func labelMapFromBytes(data []byte) *imgio.LabelMap {
	w, h := 1, 1
	if len(data) > 0 {
		w = 1 + int(data[0])%64
	}
	if len(data) > 1 {
		h = 1 + int(data[1])%64
	}
	data = data[min(len(data), 2):]
	lm := &imgio.LabelMap{W: w, H: h, Labels: make([]int32, w*h)}
	for i := range lm.Labels {
		var b byte
		if len(data) > 0 {
			b = data[i%len(data)]
		}
		v := int32(b>>1) - 1 // [-1, 126]: Unassigned plus small positives
		if b&1 == 1 && i > 0 {
			v = lm.Labels[i-1] // bias toward runs, like real superpixels
		}
		lm.Labels[i] = v
	}
	return lm
}

// FuzzSLBLRLERoundTrip asserts that arbitrary label maps survive the
// RLE framing byte-exactly: decode(encode(m)) == m, and re-encoding the
// decode reproduces the stream byte-for-byte (canonical coding).
func FuzzSLBLRLERoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 4, 0, 1, 2, 3})
	f.Add([]byte{63, 63, 255, 255, 0, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		lm := labelMapFromBytes(data)
		var buf bytes.Buffer
		if err := EncodeRLE(&buf, lm); err != nil {
			t.Fatalf("encode: %v", err)
		}
		stream := append([]byte(nil), buf.Bytes()...)
		got, err := Decode(&buf, lm.W*lm.H, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.W != lm.W || got.H != lm.H {
			t.Fatalf("dims %dx%d, want %dx%d", got.W, got.H, lm.W, lm.H)
		}
		for i := range lm.Labels {
			if got.Labels[i] != lm.Labels[i] {
				t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], lm.Labels[i])
			}
		}
		var again bytes.Buffer
		if err := EncodeRLE(&again, got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(stream, again.Bytes()) {
			t.Fatal("re-encode not byte-identical: coding is not canonical")
		}
	})
}

// FuzzDeltaDecode drives the delta codec two ways: arbitrary maps and
// bases must round-trip byte-exactly, and the raw fuzz bytes are also
// fed straight into Decode as a hostile stream, which must either fail
// cleanly or yield a map within the pixel budget — never panic or
// allocate past it.
func FuzzDeltaDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SLBD\x02\x00\x00\x00\x02\x00\x00\x00\x00\x04\x02"))
	f.Add([]byte{8, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Round-trip: derive frame and base from the same bytes so they
		// mostly agree (realistic video deltas) but differ in spots.
		lm := labelMapFromBytes(data)
		base := labelMapFromBytes(data)
		for i := 0; i < len(base.Labels); i += 7 {
			base.Labels[i] ^= 1
		}
		for _, b := range []*imgio.LabelMap{nil, base, lm} {
			var buf bytes.Buffer
			if err := EncodeDelta(&buf, lm, b); err != nil {
				t.Fatalf("encode: %v", err)
			}
			stream := append([]byte(nil), buf.Bytes()...)
			got, err := Decode(&buf, lm.W*lm.H, b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			for i := range lm.Labels {
				if got.Labels[i] != lm.Labels[i] {
					t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], lm.Labels[i])
				}
			}
			var again bytes.Buffer
			if err := EncodeDelta(&again, got, b); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(stream, again.Bytes()) {
				t.Fatal("re-encode not byte-identical: coding is not canonical")
			}
		}

		// Hostile: the input itself as a stream, tiny pixel budget.
		const budget = 1 << 12
		if got, err := Decode(bytes.NewReader(data), budget, nil); err == nil {
			if got.W*got.H > budget {
				t.Fatalf("decode exceeded budget: %dx%d > %d", got.W, got.H, budget)
			}
			if len(got.Labels) != got.W*got.H {
				t.Fatalf("decode sized %d labels for %dx%d", len(got.Labels), got.W, got.H)
			}
		}
	})
}
