// Package wire is the versioned binary wire layer for label maps: the
// formats a segmentation service ships over the network, shared by the
// one-shot POST path today and the batch/streaming paths to come.
//
// Three variants share a common header (4-byte magic, then width and
// height as little-endian uint32):
//
//	SLBL  raw      n×int32 little-endian labels — fixed 4·n payload,
//	               trivially seekable, byte-identical to
//	               imgio.EncodeLabelMap.
//	SLBR  RLE      runs of (uvarint length ≥ 1, zigzag-varint label).
//	               Superpixel label maps are long horizontal runs by
//	               construction — the paper's raster-order assignment
//	               memory readout — so this typically lands well under
//	               a byte per pixel.
//	SLBD  delta    records of (uvarint skip, uvarint length ≥ 1,
//	               zigzag-varint label) against a base map: skip pixels
//	               that kept their base label, then a run that changed
//	               to one new label. A nil base means all-Unassigned,
//	               which degrades to RLE with one extra byte per run.
//	               Consecutive video frames share most labels (warm-
//	               started centers barely move), so deltas approach
//	               zero bytes for static scenes.
//
// Both variable-length codings are canonical — maximal skip, then
// maximal run — so equal inputs encode to equal bytes, goldens are
// stable, and the fuzz harness can assert encode∘decode∘encode is the
// identity on bytes, not just on labels.
//
// Decoders validate the header against the caller's pixel budget before
// any pixel-sized allocation (mirroring the PNG-amplification fix in
// the image decoders), and every run is bounds-checked against the
// remaining pixel count, so a hostile stream can neither over-allocate
// nor write out of bounds.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sslic/internal/imgio"
)

// Magic strings of the three framings.
const (
	magicRaw   = "SLBL"
	magicRLE   = "SLBR"
	magicDelta = "SLBD"
)

// maxDim bounds each header dimension, matching the image decoders.
const maxDim = 1 << 20

// Format selects a label-map wire encoding.
type Format int

const (
	// Raw is the fixed-size SLBL framing.
	Raw Format = iota
	// RLE is the run-length SLBR framing.
	RLE
	// Delta is the base-relative SLBD framing.
	Delta
)

// ParseFormat maps the ?format= tokens to a Format.
func ParseFormat(s string) (Format, bool) {
	switch s {
	case "slbl":
		return Raw, true
	case "slbl-rle":
		return RLE, true
	case "slbl-delta":
		return Delta, true
	}
	return 0, false
}

// String returns the ?format= token of f.
func (f Format) String() string {
	switch f {
	case Raw:
		return "slbl"
	case RLE:
		return "slbl-rle"
	case Delta:
		return "slbl-delta"
	}
	return fmt.Sprintf("wire.Format(%d)", int(f))
}

// ContentType returns the MIME type stamped on responses in format f.
func (f Format) ContentType() string {
	switch f {
	case RLE:
		return "application/x-sslic-labels-rle"
	case Delta:
		return "application/x-sslic-labels-delta"
	default:
		return "application/x-sslic-labels"
	}
}

// ErrTooLarge reports a stream whose header claims more pixels than the
// caller's budget, detected before any pixel-sized allocation.
var ErrTooLarge = errors.New("wire: label map exceeds pixel budget")

// ErrBaseMismatch reports a delta encode/decode whose base map has
// different dimensions than the stream.
var ErrBaseMismatch = errors.New("wire: delta base dimensions mismatch")

// chunkWriter batches small writes into a stack-friendly buffer so
// encoders hit the underlying writer in ~4KB slabs without allocating a
// bufio.Writer per response.
type chunkWriter struct {
	w   io.Writer
	n   int
	buf [4096]byte
}

func (cw *chunkWriter) room(need int) error {
	if cw.n+need <= len(cw.buf) {
		return nil
	}
	return cw.flush()
}

func (cw *chunkWriter) flush() error {
	if cw.n == 0 {
		return nil
	}
	_, err := cw.w.Write(cw.buf[:cw.n])
	cw.n = 0
	return err
}

func (cw *chunkWriter) header(magic string, w, h int) error {
	copy(cw.buf[0:4], magic)
	binary.LittleEndian.PutUint32(cw.buf[4:], uint32(w))
	binary.LittleEndian.PutUint32(cw.buf[8:], uint32(h))
	cw.n = 12
	return nil
}

// uvarint appends v; the caller must have reserved room.
func (cw *chunkWriter) uvarint(v uint64) {
	cw.n += binary.PutUvarint(cw.buf[cw.n:], v)
}

// varint appends v zigzag-coded; the caller must have reserved room.
func (cw *chunkWriter) varint(v int64) {
	cw.n += binary.PutVarint(cw.buf[cw.n:], v)
}

// Encode writes lm in format f. base is consulted only by Delta (nil
// means the all-Unassigned base) and must match lm's dimensions.
func Encode(w io.Writer, f Format, lm, base *imgio.LabelMap) error {
	switch f {
	case RLE:
		return EncodeRLE(w, lm)
	case Delta:
		return EncodeDelta(w, lm, base)
	default:
		return EncodeRaw(w, lm)
	}
}

// EncodeRaw writes lm in the fixed-size SLBL framing, byte-identical to
// imgio.EncodeLabelMap.
func EncodeRaw(w io.Writer, lm *imgio.LabelMap) error {
	cw := chunkWriter{w: w}
	cw.header(magicRaw, lm.W, lm.H)
	for _, v := range lm.Labels {
		if err := cw.room(4); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(cw.buf[cw.n:], uint32(v))
		cw.n += 4
	}
	return cw.flush()
}

// EncodeRLE writes lm in the run-length SLBR framing: maximal runs of
// (uvarint length, zigzag-varint label) covering exactly W·H pixels.
func EncodeRLE(w io.Writer, lm *imgio.LabelMap) error {
	cw := chunkWriter{w: w}
	cw.header(magicRLE, lm.W, lm.H)
	labels := lm.Labels
	for i := 0; i < len(labels); {
		j := i + 1
		for j < len(labels) && labels[j] == labels[i] {
			j++
		}
		// A run record needs at most 10+5 varint bytes.
		if err := cw.room(15); err != nil {
			return err
		}
		cw.uvarint(uint64(j - i))
		cw.varint(int64(labels[i]))
		i = j
	}
	return cw.flush()
}

// EncodeDelta writes lm in the SLBD framing relative to base: records
// of (uvarint skip over unchanged pixels, uvarint run length, zigzag-
// varint new label), where the run is the maximal stretch of changed
// pixels sharing one new label. A trailing skip that reaches the end is
// encoded (the stream must account for every pixel); nil base means
// all-Unassigned.
func EncodeDelta(w io.Writer, lm, base *imgio.LabelMap) error {
	if base != nil && (base.W != lm.W || base.H != lm.H) {
		return fmt.Errorf("%w: base %dx%d vs %dx%d",
			ErrBaseMismatch, base.W, base.H, lm.W, lm.H)
	}
	cw := chunkWriter{w: w}
	cw.header(magicDelta, lm.W, lm.H)
	labels := lm.Labels
	baseAt := func(i int) int32 { return imgio.Unassigned }
	if base != nil {
		baseAt = func(i int) int32 { return base.Labels[i] }
	}
	for i := 0; i < len(labels); {
		skip := 0
		for i < len(labels) && labels[i] == baseAt(i) {
			i++
			skip++
		}
		if err := cw.room(25); err != nil {
			return err
		}
		cw.uvarint(uint64(skip))
		if i == len(labels) {
			break
		}
		j := i + 1
		for j < len(labels) && labels[j] != baseAt(j) && labels[j] == labels[i] {
			j++
		}
		cw.uvarint(uint64(j - i))
		cw.varint(int64(labels[i]))
		i = j
	}
	return cw.flush()
}

// Decode reads one label map from r, sniffing the framing from its
// magic. maxPixels bounds what the header may claim before any
// pixel-sized allocation. base is consulted only by the delta framing
// (nil means all-Unassigned) and must match the stream's dimensions.
func Decode(r io.Reader, maxPixels int, base *imgio.LabelMap) (*imgio.LabelMap, error) {
	br := bufio.NewReaderSize(r, 4096)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading header: %w", err)
	}
	w := int(binary.LittleEndian.Uint32(hdr[4:]))
	h := int(binary.LittleEndian.Uint32(hdr[8:]))
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
		return nil, fmt.Errorf("wire: invalid dimensions %dx%d", w, h)
	}
	if w*h > maxPixels {
		return nil, fmt.Errorf("wire: %dx%d: %w", w, h, ErrTooLarge)
	}
	magic := string(hdr[:4])
	lm := &imgio.LabelMap{W: w, H: h, Labels: make([]int32, w*h)}
	switch magic {
	case magicRaw:
		if err := decodeRaw(br, lm.Labels); err != nil {
			return nil, err
		}
	case magicRLE:
		if err := decodeRLE(br, lm.Labels); err != nil {
			return nil, err
		}
	case magicDelta:
		if base != nil && (base.W != w || base.H != h) {
			return nil, fmt.Errorf("%w: base %dx%d vs %dx%d",
				ErrBaseMismatch, base.W, base.H, w, h)
		}
		if err := decodeDelta(br, lm.Labels, base); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wire: unrecognized magic %q", magic)
	}
	return lm, nil
}

func decodeRaw(br *bufio.Reader, labels []int32) error {
	var chunk [4 * 1024]byte
	for i := 0; i < len(labels); {
		m := len(labels) - i
		if m > 1024 {
			m = 1024
		}
		if _, err := io.ReadFull(br, chunk[:4*m]); err != nil {
			return fmt.Errorf("wire: reading labels: %w", err)
		}
		for j := 0; j < m; j++ {
			labels[i+j] = int32(binary.LittleEndian.Uint32(chunk[4*j:]))
		}
		i += m
	}
	return nil
}

// readLabel reads one zigzag-varint label, rejecting values outside
// int32.
func readLabel(br *bufio.Reader) (int32, error) {
	v, err := binary.ReadVarint(br)
	if err != nil {
		return 0, fmt.Errorf("wire: reading label: %w", err)
	}
	if v < -1<<31 || v > 1<<31-1 {
		return 0, fmt.Errorf("wire: label %d out of int32 range", v)
	}
	return int32(v), nil
}

func decodeRLE(br *bufio.Reader, labels []int32) error {
	for pos := 0; pos < len(labels); {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("wire: reading run length: %w", err)
		}
		if n < 1 || n > uint64(len(labels)-pos) {
			return fmt.Errorf("wire: run of %d at pixel %d overruns %d-pixel map",
				n, pos, len(labels))
		}
		v, err := readLabel(br)
		if err != nil {
			return err
		}
		for end := pos + int(n); pos < end; pos++ {
			labels[pos] = v
		}
	}
	return nil
}

func decodeDelta(br *bufio.Reader, labels []int32, base *imgio.LabelMap) error {
	// Materialize the base first; skipped stretches keep these values.
	if base == nil {
		for i := range labels {
			labels[i] = imgio.Unassigned
		}
	} else {
		copy(labels, base.Labels)
	}
	for pos := 0; pos < len(labels); {
		skip, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("wire: reading skip: %w", err)
		}
		if skip > uint64(len(labels)-pos) {
			return fmt.Errorf("wire: skip of %d at pixel %d overruns %d-pixel map",
				skip, pos, len(labels))
		}
		pos += int(skip)
		if pos == len(labels) {
			break
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("wire: reading run length: %w", err)
		}
		if n < 1 || n > uint64(len(labels)-pos) {
			return fmt.Errorf("wire: run of %d at pixel %d overruns %d-pixel map",
				n, pos, len(labels))
		}
		v, err := readLabel(br)
		if err != nil {
			return err
		}
		for end := pos + int(n); pos < end; pos++ {
			labels[pos] = v
		}
	}
	return nil
}
