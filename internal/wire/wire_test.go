package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"sslic/internal/imgio"
)

// mapFrom builds a W×H label map from a generator.
func mapFrom(w, h int, f func(i int) int32) *imgio.LabelMap {
	lm := &imgio.LabelMap{W: w, H: h, Labels: make([]int32, w*h)}
	for i := range lm.Labels {
		lm.Labels[i] = f(i)
	}
	return lm
}

// testMaps is a spread of label-map shapes: uniform, striped,
// per-pixel-unique, negative labels, and seeded-random superpixel-ish.
func testMaps(t *testing.T) []*imgio.LabelMap {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return []*imgio.LabelMap{
		mapFrom(1, 1, func(i int) int32 { return 0 }),
		mapFrom(17, 3, func(i int) int32 { return 7 }),
		mapFrom(16, 16, func(i int) int32 { return int32(i % 4) }),
		mapFrom(16, 16, func(i int) int32 { return int32(i) }),
		mapFrom(9, 5, func(i int) int32 { return imgio.Unassigned }),
		mapFrom(33, 21, func(i int) int32 { return int32(i/13) - 3 }),
		mapFrom(64, 48, func(i int) int32 { return rng.Int31n(8) }),
		mapFrom(5, 4, func(i int) int32 {
			if i%3 == 0 {
				return -1 << 31
			}
			return 1<<31 - 1
		}),
	}
}

func TestRawMatchesImgioEncoding(t *testing.T) {
	for _, lm := range testMaps(t) {
		var ours, theirs bytes.Buffer
		if err := EncodeRaw(&ours, lm); err != nil {
			t.Fatal(err)
		}
		if err := imgio.EncodeLabelMap(&theirs, lm); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ours.Bytes(), theirs.Bytes()) {
			t.Fatalf("%dx%d: wire.EncodeRaw diverges from imgio.EncodeLabelMap", lm.W, lm.H)
		}
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	for _, lm := range testMaps(t) {
		base := mapFrom(lm.W, lm.H, func(i int) int32 { return int32(i % 5) })
		for _, tc := range []struct {
			name string
			enc  func(buf *bytes.Buffer) error
			base *imgio.LabelMap
		}{
			{"raw", func(b *bytes.Buffer) error { return EncodeRaw(b, lm) }, nil},
			{"rle", func(b *bytes.Buffer) error { return EncodeRLE(b, lm) }, nil},
			{"delta-empty", func(b *bytes.Buffer) error { return EncodeDelta(b, lm, nil) }, nil},
			{"delta-base", func(b *bytes.Buffer) error { return EncodeDelta(b, lm, base) }, base},
			{"delta-self", func(b *bytes.Buffer) error { return EncodeDelta(b, lm, lm) }, lm},
		} {
			var buf bytes.Buffer
			if err := tc.enc(&buf); err != nil {
				t.Fatalf("%s %dx%d: encode: %v", tc.name, lm.W, lm.H, err)
			}
			first := append([]byte(nil), buf.Bytes()...)
			got, err := Decode(&buf, lm.W*lm.H, tc.base)
			if err != nil {
				t.Fatalf("%s %dx%d: decode: %v", tc.name, lm.W, lm.H, err)
			}
			if got.W != lm.W || got.H != lm.H {
				t.Fatalf("%s: dims %dx%d, want %dx%d", tc.name, got.W, got.H, lm.W, lm.H)
			}
			for i := range lm.Labels {
				if got.Labels[i] != lm.Labels[i] {
					t.Fatalf("%s %dx%d: label[%d] = %d, want %d",
						tc.name, lm.W, lm.H, i, got.Labels[i], lm.Labels[i])
				}
			}
			// Canonical: re-encoding the decode must reproduce the bytes.
			var again bytes.Buffer
			var b2 *imgio.LabelMap
			switch tc.name {
			case "delta-base":
				b2 = base
			case "delta-self":
				b2 = lm
			}
			switch {
			case tc.name == "raw":
				err = EncodeRaw(&again, got)
			case tc.name == "rle":
				err = EncodeRLE(&again, got)
			default:
				err = EncodeDelta(&again, got, b2)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, again.Bytes()) {
				t.Fatalf("%s %dx%d: encode∘decode∘encode not byte-identical", tc.name, lm.W, lm.H)
			}
		}
	}
}

func TestDeltaIdenticalFrameIsTiny(t *testing.T) {
	lm := mapFrom(320, 240, func(i int) int32 { return int32(i / 100) })
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, lm, lm); err != nil {
		t.Fatal(err)
	}
	// Header (12) plus a single skip uvarint covering all 76800 pixels.
	if buf.Len() > 12+3 {
		t.Fatalf("identical-frame delta is %d bytes, want <= 15", buf.Len())
	}
}

func TestRLEBeatsRawOnSuperpixelShapes(t *testing.T) {
	lm := mapFrom(320, 240, func(i int) int32 { return int32((i % 320) / 20) })
	var raw, rle bytes.Buffer
	if err := EncodeRaw(&raw, lm); err != nil {
		t.Fatal(err)
	}
	if err := EncodeRLE(&rle, lm); err != nil {
		t.Fatal(err)
	}
	if rle.Len() >= raw.Len()/10 {
		t.Fatalf("RLE %d bytes vs raw %d: expected >10x on run-heavy maps", rle.Len(), raw.Len())
	}
}

func TestDecodeEnforcesPixelBudget(t *testing.T) {
	lm := mapFrom(100, 100, func(i int) int32 { return 1 })
	var buf bytes.Buffer
	if err := EncodeRLE(&buf, lm); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()), 100*100-1, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("decode under budget: err = %v, want ErrTooLarge", err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()), 100*100, nil); err != nil {
		t.Fatalf("decode at exact budget: %v", err)
	}
}

func TestDecodeRejectsHostileStreams(t *testing.T) {
	mk := func(magic string, w, h uint32, tail []byte) []byte {
		b := make([]byte, 12, 12+len(tail))
		copy(b, magic)
		b[4], b[5], b[6], b[7] = byte(w), byte(w>>8), byte(w>>16), byte(w>>24)
		b[8], b[9], b[10], b[11] = byte(h), byte(h>>8), byte(h>>16), byte(h>>24)
		return append(b, tail...)
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"bad magic", mk("XXXX", 2, 2, nil)},
		{"zero dims", mk("SLBR", 0, 5, nil)},
		{"huge dims", mk("SLBR", 1<<21, 1, nil)},
		{"rle overrun", mk("SLBR", 2, 2, []byte{200, 1, 0})}, // run of 200 into 4 pixels
		{"rle zero run", mk("SLBR", 2, 2, []byte{0, 0})},
		{"rle truncated", mk("SLBR", 2, 2, []byte{4})},
		{"raw truncated", mk("SLBL", 2, 2, []byte{1, 2, 3})},
		{"delta skip overrun", mk("SLBD", 2, 2, []byte{200, 1})},
		{"delta run overrun", mk("SLBD", 2, 2, []byte{0, 200, 1, 0})},
		{"delta zero run", mk("SLBD", 2, 2, []byte{0, 0, 0})},
		{"truncated header", []byte{0x53, 0x4c}},
	}
	for _, c := range cases {
		if _, err := Decode(bytes.NewReader(c.in), 1<<20, nil); err == nil {
			t.Errorf("%s: decode accepted hostile stream", c.name)
		}
	}
}

func TestDeltaBaseMismatch(t *testing.T) {
	lm := mapFrom(4, 4, func(i int) int32 { return 1 })
	base := mapFrom(5, 4, func(i int) int32 { return 1 })
	if err := EncodeDelta(&bytes.Buffer{}, lm, base); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("encode: err = %v, want ErrBaseMismatch", err)
	}
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, lm, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()), 1<<20, base); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("decode: err = %v, want ErrBaseMismatch", err)
	}
}

func TestParseFormat(t *testing.T) {
	for _, f := range []Format{Raw, RLE, Delta} {
		got, ok := ParseFormat(f.String())
		if !ok || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v", f.String(), got, ok)
		}
		if !strings.HasPrefix(f.ContentType(), "application/x-sslic-labels") {
			t.Errorf("ContentType(%v) = %q", f, f.ContentType())
		}
	}
	if _, ok := ParseFormat("labels"); ok {
		t.Error("ParseFormat accepted non-wire token")
	}
}
