package hdl

import (
	"strings"
	"testing"

	"sslic/internal/hw"
)

func TestEmitAllConfigs(t *testing.T) {
	for _, cfg := range hw.Table3Configs() {
		src, err := Emit(cfg, DefaultOptions())
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if len(src) < 1000 {
			t.Fatalf("%v: suspiciously short output (%d bytes)", cfg, len(src))
		}
		// Structural expectations per configuration.
		if cfg.DistWays == 9 {
			mustContain(t, src, "generate", cfg.String())
			mustContain(t, src, "dist_lane", cfg.String())
		} else {
			mustContain(t, src, "time-multiplexed over the 9 candidates", cfg.String())
		}
		if cfg.MinWays == 9 {
			mustContain(t, src, "module min9_tree", cfg.String())
		} else {
			mustContain(t, src, "module min9_iter", cfg.String())
		}
		if cfg.AdderWays == 6 {
			mustContain(t, src, "module sigma_update_par", cfg.String())
		} else {
			mustContain(t, src, "module sigma_update_iter", cfg.String())
		}
	}
}

func mustContain(t *testing.T, src, want, cfg string) {
	t.Helper()
	if !strings.Contains(src, want) {
		t.Errorf("%s: output missing %q", cfg, want)
	}
}

func TestEmitDeterministic(t *testing.T) {
	a, err := Emit(hw.Config996, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Emit(hw.Config996, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("generation not deterministic")
	}
}

func TestEmitModuleBalance(t *testing.T) {
	// Every module/endmodule must pair, and the top module must carry
	// the configured name and parameters.
	src, err := Emit(hw.Config996, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	modules := strings.Count(src, "\nmodule ")
	ends := strings.Count(src, "\nendmodule")
	if modules == 0 || modules != ends {
		t.Fatalf("%d module vs %d endmodule", modules, ends)
	}
	mustContain(t, src, "module cluster_update_unit", "996")
	mustContain(t, src, "parameter DIST_WAYS = 9", "996")
	mustContain(t, src, "parameter MIN_WAYS  = 9", "996")
	mustContain(t, src, "parameter ADD_WAYS  = 6", "996")
	// The documented latency/II must match the timing model.
	mustContain(t, src, "pipeline latency 7 cycles, initiation interval 1", "996")
}

func TestEmitOptionsValidation(t *testing.T) {
	bad := []Options{
		{ModuleName: "", DataWidth: 8, CoordWidth: 11},
		{ModuleName: "Bad-Name", DataWidth: 8, CoordWidth: 11},
		{ModuleName: "ok", DataWidth: 2, CoordWidth: 11},
		{ModuleName: "ok", DataWidth: 8, CoordWidth: 40},
	}
	for i, o := range bad {
		if _, err := Emit(hw.Config996, o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
	if _, err := Emit(hw.ClusterConfig{DistWays: 5, MinWays: 1, AdderWays: 1}, DefaultOptions()); err == nil {
		t.Error("invalid cluster config accepted")
	}
}

func TestEmitCustomWidths(t *testing.T) {
	o := DefaultOptions()
	o.DataWidth = 10
	o.ModuleName = "cluster_10b"
	src, err := Emit(hw.Config111, o)
	if err != nil {
		t.Fatal(err)
	}
	mustContain(t, src, "module cluster_10b", "custom")
	mustContain(t, src, "parameter DW = 10", "custom")
}

// TestEmitNoUnresolvedFormatVerbs guards the printf-built templates: a
// stray %d or %s in the emitted Verilog means a broken format call.
func TestEmitNoUnresolvedFormatVerbs(t *testing.T) {
	for _, cfg := range hw.Table3Configs() {
		src, err := Emit(cfg, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range []string{"%!", "%d", "%s"} {
			if strings.Contains(src, bad) {
				t.Fatalf("%v: unresolved verb %q in output", cfg, bad)
			}
		}
	}
}
