package dataset

import (
	"encoding/json"
	"fmt"
	"os"
)

// Manifest records everything needed to regenerate a corpus bit-exactly:
// the configuration and the seed schedule. cmd/sslic-dataset writes one
// next to the generated files so any corpus on disk documents itself.
type Manifest struct {
	// FormatVersion guards against future schema changes.
	FormatVersion int `json:"format_version"`
	// Config is the generator configuration.
	Config Config `json:"config"`
	// Count is the number of samples.
	Count int `json:"count"`
	// BaseSeed is the corpus seed; sample i uses BaseSeed + i*seedStride.
	BaseSeed int64 `json:"base_seed"`
}

// manifestVersion is the current schema version.
const manifestVersion = 1

// NewManifest describes a corpus produced by Corpus(cfg, n, seed).
func NewManifest(cfg Config, n int, seed int64) Manifest {
	return Manifest{FormatVersion: manifestVersion, Config: cfg, Count: n, BaseSeed: seed}
}

// Validate reports whether the manifest can regenerate a corpus.
func (m Manifest) Validate() error {
	if m.FormatVersion != manifestVersion {
		return fmt.Errorf("dataset: manifest version %d, want %d", m.FormatVersion, manifestVersion)
	}
	if m.Count < 1 {
		return fmt.Errorf("dataset: manifest count %d", m.Count)
	}
	return m.Config.Validate()
}

// Regenerate rebuilds the corpus the manifest describes.
func (m Manifest) Regenerate() ([]*Sample, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return Corpus(m.Config, m.Count, m.BaseSeed)
}

// WriteFile stores the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("dataset: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}
