package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 64, 48
	cfg.Regions = 6
	m := NewManifest(cfg, 3, 42)
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("manifest changed: %+v vs %+v", back, m)
	}
}

func TestManifestRegenerateBitExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 64, 48
	cfg.Regions = 6
	orig, err := Corpus(cfg, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(cfg, 2, 7)
	regen, err := m.Regenerate()
	if err != nil {
		t.Fatal(err)
	}
	for s := range orig {
		for i := range orig[s].Image.C0 {
			if orig[s].Image.C0[i] != regen[s].Image.C0[i] {
				t.Fatalf("sample %d pixel %d differs", s, i)
			}
		}
		for i := range orig[s].GT.Labels {
			if orig[s].GT.Labels[i] != regen[s].GT.Labels[i] {
				t.Fatalf("sample %d gt %d differs", s, i)
			}
		}
	}
}

func TestManifestValidation(t *testing.T) {
	good := NewManifest(DefaultConfig(), 2, 1)
	bad := good
	bad.FormatVersion = 99
	if err := bad.Validate(); err == nil {
		t.Error("wrong version accepted")
	}
	bad = good
	bad.Count = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero count accepted")
	}
	bad = good
	bad.Config.W = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := LoadManifest("/nonexistent/manifest.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("bad JSON accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
