// Package dataset generates the synthetic benchmark corpus that stands in
// for the Berkeley segmentation dataset (BSDS) used in the paper's
// evaluation (100-200 natural images with human-drawn ground truth).
// Shipping BSDS is impossible offline; instead this package produces
// seeded, reproducible piecewise-smooth scenes — Voronoi mosaics, blob
// compositions and stripe patterns — with *exact* ground-truth label maps.
// The scenes exercise the same code paths (color conversion, clustering,
// metric evaluation) and give noise, texture and illumination gradients
// comparable in difficulty to natural images. DESIGN.md records this
// substitution.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"sslic/internal/imgio"
)

// Kind selects the scene family.
type Kind int

const (
	// Voronoi scenes tile the image with irregular convex-ish regions —
	// the closest analogue to object-part segmentations.
	Voronoi Kind = iota
	// Blobs scenes place elliptical objects over a background, the
	// "objects on a scene" composition of natural photographs.
	Blobs
	// Stripes scenes contain curved band boundaries, stressing boundary
	// recall along smooth contours.
	Stripes
)

// String names the scene kind.
func (k Kind) String() string {
	switch k {
	case Blobs:
		return "blobs"
	case Stripes:
		return "stripes"
	default:
		return "voronoi"
	}
}

// Config controls scene generation. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	W, H    int
	Kind    Kind
	Regions int // ground-truth region count (Voronoi seeds / blob count)
	// NoiseSigma is the per-channel Gaussian noise std deviation in 8-bit
	// code units.
	NoiseSigma float64
	// IlluminationGradient scales a smooth left-right brightness ramp
	// (0 = flat, 0.3 = ±15% at the edges).
	IlluminationGradient float64
	// TextureAmp is the amplitude of the per-region sinusoidal texture in
	// code units.
	TextureAmp float64
	// MinColorSep is the minimum Euclidean RGB distance enforced between
	// the colors of neighboring regions.
	MinColorSep float64
	// BlurRadius applies a box blur of the given radius after rendering,
	// softening region boundaries the way optics and mixed pixels do in
	// natural photographs. Ground truth stays crisp, so segmentation on
	// blurred edges becomes genuinely hard, like on BSDS.
	BlurRadius int
	// WiggleAmp distorts region boundaries with a smooth pseudo-random
	// displacement field of this amplitude (pixels). Organic, curved
	// boundaries are what separate natural scenes from synthetic mosaics:
	// a fresh grid initialization leaks across them (high USE), iterating
	// snaps superpixels onto them, and curvature finer than the
	// superpixel spacing leaves the irreducible USE floor the Berkeley
	// numbers show.
	WiggleAmp float64
	// WiggleWavelength is the spatial scale of the distortion field in
	// pixels (default ~40).
	WiggleWavelength float64
}

// DefaultConfig returns a BSDS-like configuration: the Berkeley images
// are 481×321, with on the order of 5-30 human-annotated regions.
func DefaultConfig() Config {
	// The parameters are tuned so that reference SLIC at K=900 lands in
	// the paper's Berkeley operating regime: undersegmentation error
	// declining toward a floor of ~0.13 as iterations progress (Fig 2a
	// reports 0.142→0.135), with boundary curvature finer than the
	// superpixel spacing supplying the irreducible floor.
	return Config{
		W: 481, H: 321,
		Kind:                 Voronoi,
		Regions:              40,
		NoiseSigma:           3,
		IlluminationGradient: 0.15,
		TextureAmp:           4,
		MinColorSep:          70,
		BlurRadius:           0,
		WiggleAmp:            7,
		WiggleWavelength:     15,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.W <= 0 || c.H <= 0 {
		return fmt.Errorf("dataset: invalid size %dx%d", c.W, c.H)
	}
	if c.Regions < 1 || c.Regions > c.W*c.H {
		return fmt.Errorf("dataset: region count %d out of range", c.Regions)
	}
	if c.NoiseSigma < 0 || c.TextureAmp < 0 || c.MinColorSep < 0 {
		return fmt.Errorf("dataset: negative noise/texture/separation")
	}
	if c.BlurRadius < 0 {
		return fmt.Errorf("dataset: negative blur radius")
	}
	return nil
}

// Sample is one generated scene: the rendered RGB image plus its exact
// ground-truth segmentation.
type Sample struct {
	Image *imgio.Image
	GT    *imgio.LabelMap
	Seed  int64
}

// Generate renders one scene deterministically from the seed.
func Generate(cfg Config, seed int64) (*Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	dis := newDistortion(cfg, rng)
	var gt *imgio.LabelMap
	switch cfg.Kind {
	case Blobs:
		gt = blobLabels(cfg, rng, dis)
	case Stripes:
		gt = stripeLabels(cfg, rng, dis)
	default:
		gt = voronoiLabels(cfg, rng, dis)
	}
	im := render(cfg, gt, rng)
	return &Sample{Image: im, GT: gt, Seed: seed}, nil
}

// distortion is a smooth pseudo-random displacement field built from a
// few sine waves; applying it to the sampling coordinates of the label
// generators turns straight Voronoi/ellipse boundaries into organic
// curves.
type distortion struct {
	amp   float64
	waves [4]struct{ kx, ky, phase, weight float64 }
}

func newDistortion(cfg Config, rng *rand.Rand) *distortion {
	d := &distortion{amp: cfg.WiggleAmp}
	if cfg.WiggleAmp <= 0 {
		return d
	}
	wl := cfg.WiggleWavelength
	if wl <= 0 {
		wl = 40
	}
	for i := range d.waves {
		// Random directions with wavelengths around the configured scale.
		theta := rng.Float64() * 2 * math.Pi
		k := 2 * math.Pi / (wl * (0.6 + rng.Float64()*0.9))
		d.waves[i].kx = k * math.Cos(theta)
		d.waves[i].ky = k * math.Sin(theta)
		d.waves[i].phase = rng.Float64() * 2 * math.Pi
		d.waves[i].weight = 0.5 + rng.Float64()*0.5
	}
	return d
}

// at returns the displaced coordinates for pixel (x, y).
func (d *distortion) at(x, y int) (float64, float64) {
	fx, fy := float64(x), float64(y)
	if d.amp <= 0 {
		return fx, fy
	}
	var dx, dy float64
	for i, w := range d.waves {
		s := math.Sin(w.kx*fx + w.ky*fy + w.phase)
		if i%2 == 0 {
			dx += w.weight * s
		} else {
			dy += w.weight * s
		}
	}
	return fx + d.amp*dx, fy + d.amp*dy
}

// Corpus generates n scenes with consecutive seeds derived from seed.
func Corpus(cfg Config, n int, seed int64) ([]*Sample, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: corpus size %d", n)
	}
	out := make([]*Sample, n)
	for i := range out {
		s, err := Generate(cfg, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// voronoiLabels assigns each pixel to its nearest seed point under a mild
// per-seed anisotropy, yielding irregular convex-ish regions.
func voronoiLabels(cfg Config, rng *rand.Rand, dis *distortion) *imgio.LabelMap {
	type site struct {
		x, y   float64
		sx, sy float64 // anisotropic scaling
	}
	sites := make([]site, cfg.Regions)
	for i := range sites {
		sites[i] = site{
			x:  rng.Float64() * float64(cfg.W),
			y:  rng.Float64() * float64(cfg.H),
			sx: 0.7 + rng.Float64()*0.6,
			sy: 0.7 + rng.Float64()*0.6,
		}
	}
	lm := imgio.NewLabelMap(cfg.W, cfg.H)
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			px, py := dis.at(x, y)
			best := 0
			bestD := math.Inf(1)
			for i, s := range sites {
				dx := (px - s.x) * s.sx
				dy := (py - s.y) * s.sy
				if d := dx*dx + dy*dy; d < bestD {
					bestD = d
					best = i
				}
			}
			lm.Set(x, y, int32(best))
		}
	}
	return lm
}

// blobLabels places Regions-1 ellipses (later ones on top) over a
// background region 0.
func blobLabels(cfg Config, rng *rand.Rand, dis *distortion) *imgio.LabelMap {
	lm := imgio.NewLabelMap(cfg.W, cfg.H)
	for i := range lm.Labels {
		lm.Labels[i] = 0
	}
	minDim := math.Min(float64(cfg.W), float64(cfg.H))
	for b := 1; b < cfg.Regions; b++ {
		cx := rng.Float64() * float64(cfg.W)
		cy := rng.Float64() * float64(cfg.H)
		rx := minDim * (0.08 + rng.Float64()*0.18)
		ry := minDim * (0.08 + rng.Float64()*0.18)
		theta := rng.Float64() * math.Pi
		cosT, sinT := math.Cos(theta), math.Sin(theta)
		margin := int(dis.amp*2) + 1
		x0 := maxInt(0, int(cx-rx-ry)-margin)
		x1 := minInt(cfg.W-1, int(cx+rx+ry)+margin)
		y0 := maxInt(0, int(cy-rx-ry)-margin)
		y1 := minInt(cfg.H-1, int(cy+rx+ry)+margin)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				px, py := dis.at(x, y)
				dx := px - cx
				dy := py - cy
				u := (dx*cosT + dy*sinT) / rx
				v := (-dx*sinT + dy*cosT) / ry
				if u*u+v*v <= 1 {
					lm.Set(x, y, int32(b))
				}
			}
		}
	}
	return lm
}

// stripeLabels draws Regions curved bands across the image.
func stripeLabels(cfg Config, rng *rand.Rand, dis *distortion) *imgio.LabelMap {
	lm := imgio.NewLabelMap(cfg.W, cfg.H)
	amp := float64(cfg.H) / float64(cfg.Regions) * (0.3 + rng.Float64()*0.5)
	freq := (0.5 + rng.Float64()*1.5) * 2 * math.Pi / float64(cfg.W)
	phase := rng.Float64() * 2 * math.Pi
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			px, py := dis.at(x, y)
			wave := amp * math.Sin(freq*px+phase)
			band := int((py + wave) / float64(cfg.H) * float64(cfg.Regions))
			if band < 0 {
				band = 0
			}
			if band >= cfg.Regions {
				band = cfg.Regions - 1
			}
			lm.Set(x, y, int32(band))
		}
	}
	return lm
}

// render paints the label map with well-separated region colors, then
// applies texture, illumination and noise.
func render(cfg Config, gt *imgio.LabelMap, rng *rand.Rand) *imgio.Image {
	adj := adjacency(gt)
	colors := pickColors(int(gt.MaxLabel())+1, adj, cfg.MinColorSep, rng)

	// Per-region texture parameters.
	type tex struct{ fx, fy, phase float64 }
	texes := make([]tex, len(colors))
	for i := range texes {
		// High-frequency texture: it averages out within a superpixel, so
		// it adds realism without out-competing the region contrast.
		texes[i] = tex{
			fx:    0.3 + rng.Float64()*0.6,
			fy:    0.3 + rng.Float64()*0.6,
			phase: rng.Float64() * 2 * math.Pi,
		}
	}

	// Paint the clean scene in float, blur it (optics happen before the
	// sensor), then add sensor noise and quantize.
	n := cfg.W * cfg.H
	planes := [3][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			i := y*cfg.W + x
			lbl := int(gt.At(x, y))
			c := colors[lbl]
			t := texes[lbl]
			shade := cfg.TextureAmp * math.Sin(t.fx*float64(x)+t.fy*float64(y)+t.phase)
			illum := 1 + cfg.IlluminationGradient*(float64(x)/float64(cfg.W)-0.5)
			for ch := 0; ch < 3; ch++ {
				planes[ch][i] = (float64(c[ch]) + shade) * illum
			}
		}
	}
	if cfg.BlurRadius > 0 {
		for ch := range planes {
			planes[ch] = boxBlur(planes[ch], cfg.W, cfg.H, cfg.BlurRadius)
		}
	}
	im := imgio.NewImage(cfg.W, cfg.H)
	for i := 0; i < n; i++ {
		im.C0[i] = clamp8(planes[0][i] + rng.NormFloat64()*cfg.NoiseSigma)
		im.C1[i] = clamp8(planes[1][i] + rng.NormFloat64()*cfg.NoiseSigma)
		im.C2[i] = clamp8(planes[2][i] + rng.NormFloat64()*cfg.NoiseSigma)
	}
	return im
}

// boxBlur applies a separable box filter of the given radius with edge
// clamping.
func boxBlur(src []float64, w, h, r int) []float64 {
	tmp := make([]float64, len(src))
	dst := make([]float64, len(src))
	inv := 1 / float64(2*r+1)
	// Horizontal pass.
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x < w; x++ {
			var s float64
			for d := -r; d <= r; d++ {
				xx := x + d
				if xx < 0 {
					xx = 0
				} else if xx >= w {
					xx = w - 1
				}
				s += src[row+xx]
			}
			tmp[row+x] = s * inv
		}
	}
	// Vertical pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float64
			for d := -r; d <= r; d++ {
				yy := y + d
				if yy < 0 {
					yy = 0
				} else if yy >= h {
					yy = h - 1
				}
				s += tmp[yy*w+x]
			}
			dst[y*w+x] = s * inv
		}
	}
	return dst
}

// adjacency returns the set of 4-adjacent region pairs.
func adjacency(lm *imgio.LabelMap) map[[2]int32]bool {
	adj := make(map[[2]int32]bool)
	add := func(a, b int32) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		adj[[2]int32{a, b}] = true
	}
	for y := 0; y < lm.H; y++ {
		for x := 0; x < lm.W; x++ {
			v := lm.At(x, y)
			if x+1 < lm.W {
				add(v, lm.At(x+1, y))
			}
			if y+1 < lm.H {
				add(v, lm.At(x, y+1))
			}
		}
	}
	return adj
}

// pickColors assigns each region a color such that 4-adjacent regions
// differ by at least minSep in RGB Euclidean distance (with retry budget;
// the constraint relaxes geometrically if the palette gets tight).
func pickColors(n int, adj map[[2]int32]bool, minSep float64, rng *rand.Rand) [][3]uint8 {
	colors := make([][3]uint8, n)
	randColor := func() [3]uint8 {
		// Keep away from the extremes so noise and illumination survive
		// clamping.
		return [3]uint8{
			uint8(30 + rng.Intn(196)),
			uint8(30 + rng.Intn(196)),
			uint8(30 + rng.Intn(196)),
		}
	}
	dist := func(a, b [3]uint8) float64 {
		dr := float64(a[0]) - float64(b[0])
		dg := float64(a[1]) - float64(b[1])
		db := float64(a[2]) - float64(b[2])
		return math.Sqrt(dr*dr + dg*dg + db*db)
	}
	for i := 0; i < n; i++ {
		sep := minSep
		for attempt := 0; ; attempt++ {
			c := randColor()
			ok := true
			for j := 0; j < i; j++ {
				a, b := int32(i), int32(j)
				if a > b {
					a, b = b, a
				}
				if adj[[2]int32{a, b}] && dist(c, colors[j]) < sep {
					ok = false
					break
				}
			}
			if ok {
				colors[i] = c
				break
			}
			if attempt > 0 && attempt%50 == 0 {
				sep *= 0.8 // relax if the neighborhood is saturated
			}
		}
	}
	return colors
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
