package dataset

import (
	"testing"

	"sslic/internal/imgio"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	if c.W != 481 || c.H != 321 {
		t.Fatalf("default size %dx%d, want BSDS 481x321", c.W, c.H)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.W = 0 },
		func(c *Config) { c.H = -1 },
		func(c *Config) { c.Regions = 0 },
		func(c *Config) { c.NoiseSigma = -1 },
		func(c *Config) { c.TextureAmp = -1 },
		func(c *Config) { c.MinColorSep = -1 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func smallConfig(kind Kind) Config {
	c := DefaultConfig()
	c.W, c.H = 96, 64
	c.Kind = kind
	c.Regions = 6
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(Voronoi)
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Image.C0 {
		if a.Image.C0[i] != b.Image.C0[i] || a.Image.C1[i] != b.Image.C1[i] || a.Image.C2[i] != b.Image.C2[i] {
			t.Fatal("same seed produced different images")
		}
	}
	for i := range a.GT.Labels {
		if a.GT.Labels[i] != b.GT.Labels[i] {
			t.Fatal("same seed produced different ground truth")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := smallConfig(Voronoi)
	a, _ := Generate(cfg, 1)
	b, _ := Generate(cfg, 2)
	same := true
	for i := range a.GT.Labels {
		if a.GT.Labels[i] != b.GT.Labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical ground truth")
	}
}

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []Kind{Voronoi, Blobs, Stripes} {
		cfg := smallConfig(kind)
		s, err := Generate(cfg, 7)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if s.Image.W != cfg.W || s.Image.H != cfg.H {
			t.Fatalf("%v: image size %dx%d", kind, s.Image.W, s.Image.H)
		}
		if s.GT.W != cfg.W || s.GT.H != cfg.H {
			t.Fatalf("%v: gt size mismatch", kind)
		}
		// Every pixel labeled.
		for i, v := range s.GT.Labels {
			if v < 0 {
				t.Fatalf("%v: pixel %d unlabeled", kind, i)
			}
		}
		// Region count within bounds (blobs can occlude earlier blobs, so
		// allow fewer; never more than requested).
		n := s.GT.NumRegions()
		if n < 2 || n > cfg.Regions {
			t.Fatalf("%v: %d regions for requested %d", kind, n, cfg.Regions)
		}
	}
}

func TestVoronoiRegionCountExact(t *testing.T) {
	cfg := smallConfig(Voronoi)
	s, err := Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Voronoi sites essentially always own at least one pixel at this
	// density.
	if n := s.GT.NumRegions(); n != cfg.Regions {
		t.Fatalf("voronoi regions = %d, want %d", n, cfg.Regions)
	}
}

func TestAdjacentRegionsAreColorSeparated(t *testing.T) {
	cfg := smallConfig(Voronoi)
	cfg.NoiseSigma = 0
	cfg.TextureAmp = 0
	cfg.IlluminationGradient = 0
	s, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	// With rendering disturbances off, pixels of adjacent regions sampled
	// away from boundaries must differ clearly in color: check region mean
	// colors across each adjacent pair.
	means := regionMeans(s.Image, s.GT)
	adj := adjacency(s.GT)
	for pair := range adj {
		a, b := means[pair[0]], means[pair[1]]
		var d2 float64
		for c := 0; c < 3; c++ {
			diff := a[c] - b[c]
			d2 += diff * diff
		}
		// Generator enforces MinColorSep=70 with geometric relaxation;
		// anything above 35 keeps regions clearly separable.
		if d2 < 35*35 {
			t.Fatalf("adjacent regions %v too close in color: d=%f", pair, d2)
		}
	}
}

func regionMeans(im *imgio.Image, gt *imgio.LabelMap) map[int32][3]float64 {
	sums := map[int32]*[4]float64{}
	for i, v := range gt.Labels {
		s := sums[v]
		if s == nil {
			s = &[4]float64{}
			sums[v] = s
		}
		s[0] += float64(im.C0[i])
		s[1] += float64(im.C1[i])
		s[2] += float64(im.C2[i])
		s[3]++
	}
	out := map[int32][3]float64{}
	for v, s := range sums {
		out[v] = [3]float64{s[0] / s[3], s[1] / s[3], s[2] / s[3]}
	}
	return out
}

func TestNoiseChangesPixelsNotGT(t *testing.T) {
	base := smallConfig(Voronoi)
	base.NoiseSigma = 0
	noisy := base
	noisy.NoiseSigma = 10
	a, _ := Generate(base, 5)
	b, _ := Generate(noisy, 5)
	for i := range a.GT.Labels {
		if a.GT.Labels[i] != b.GT.Labels[i] {
			t.Fatal("noise altered ground truth")
		}
	}
	diff := 0
	for i := range a.Image.C0 {
		if a.Image.C0[i] != b.Image.C0[i] {
			diff++
		}
	}
	if diff < len(a.Image.C0)/4 {
		t.Fatalf("noise changed only %d pixels", diff)
	}
}

func TestCorpus(t *testing.T) {
	cfg := smallConfig(Blobs)
	corpus, err := Corpus(cfg, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 5 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	// Samples must differ.
	if corpus[0].Seed == corpus[1].Seed {
		t.Fatal("corpus reused seeds")
	}
	if _, err := Corpus(cfg, 0, 1); err == nil {
		t.Fatal("zero-size corpus accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if Voronoi.String() != "voronoi" || Blobs.String() != "blobs" || Stripes.String() != "stripes" {
		t.Fatal("kind strings wrong")
	}
}
