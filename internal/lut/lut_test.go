package lut

import (
	"math"
	"testing"
	"testing/quick"

	"sslic/internal/colorspace"
	"sslic/internal/imgio"
)

// refLab8 computes the 8-bit Lab encoding through the float64 reference.
func refLab8(r, g, b uint8) (uint8, uint8, uint8) {
	l, a, bb := colorspace.SRGB8ToLab(r, g, b)
	return colorspace.Lab8(l, a, bb)
}

func TestNewConverterValidation(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 25} {
		if _, err := NewConverter(n); err == nil {
			t.Errorf("NewConverter(%d) succeeded, want error", n)
		}
	}
	if _, err := NewConverter(DefaultSegments); err != nil {
		t.Fatalf("default converter: %v", err)
	}
}

func TestMustNewConverterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustNewConverter(0)
}

func TestConvertMatchesReferenceOnGrid(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	var maxDL, maxDA, maxDB int
	for r := 0; r < 256; r += 15 {
		for g := 0; g < 256; g += 15 {
			for b := 0; b < 256; b += 15 {
				l8, a8, b8 := c.Convert(uint8(r), uint8(g), uint8(b))
				lr, ar, br := refLab8(uint8(r), uint8(g), uint8(b))
				maxDL = maxInt(maxDL, absInt(int(l8)-int(lr)))
				maxDA = maxInt(maxDA, absInt(int(a8)-int(ar)))
				maxDB = maxInt(maxDB, absInt(int(b8)-int(br)))
			}
		}
	}
	// The 8-segment PWL bounds |f error| at ~0.006, which the a* = 500·Δf
	// amplifier can turn into a few code units worst case; the paper's
	// quality claim (USE +0.003) tolerates this. Bound the worst case at
	// 8 codes, and the mean much tighter.
	if maxDL > 4 || maxDA > 8 || maxDB > 8 {
		t.Fatalf("LUT path deviates from reference: dL=%d dA=%d dB=%d", maxDL, maxDA, maxDB)
	}
	if mean := meanAbsError(t, DefaultSegments); mean > 1.0 {
		t.Fatalf("mean abs error %.3f code units, want <= 1.0", mean)
	}
}

func TestConvertExtremes(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	// White: L=100 → 255; a=b≈0 → ≈128.
	l8, a8, b8 := c.Convert(255, 255, 255)
	if l8 < 253 || absInt(int(a8)-128) > 2 || absInt(int(b8)-128) > 2 {
		t.Fatalf("white = %d,%d,%d", l8, a8, b8)
	}
	// Black: L≈0.
	l8, a8, b8 = c.Convert(0, 0, 0)
	if l8 > 2 || absInt(int(a8)-128) > 2 || absInt(int(b8)-128) > 2 {
		t.Fatalf("black = %d,%d,%d", l8, a8, b8)
	}
}

func TestConvertGrayAxisNeutral(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	for v := 0; v < 256; v += 5 {
		_, a8, b8 := c.Convert(uint8(v), uint8(v), uint8(v))
		if absInt(int(a8)-128) > 2 || absInt(int(b8)-128) > 2 {
			t.Fatalf("gray %d not neutral: a=%d b=%d", v, a8, b8)
		}
	}
}

func TestConvertLMonotoneOnGray(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	prev := -1
	for v := 0; v < 256; v++ {
		l8, _, _ := c.Convert(uint8(v), uint8(v), uint8(v))
		if int(l8) < prev {
			t.Fatalf("L not monotone at gray %d", v)
		}
		prev = int(l8)
	}
}

func TestMoreSegmentsNeverWorse(t *testing.T) {
	// Average |ΔL| vs reference must not increase when segments double.
	err8 := meanAbsError(t, 8)
	err16 := meanAbsError(t, 16)
	if err16 > err8+0.01 {
		t.Fatalf("16 segments worse than 8: %.4f vs %.4f", err16, err8)
	}
	// And very few segments must be visibly worse than 8 — otherwise the
	// paper's choice of 8 would be unmotivated.
	err2 := meanAbsError(t, 2)
	if err2 <= err8 {
		t.Fatalf("2 segments unexpectedly as good as 8: %.4f vs %.4f", err2, err8)
	}
}

func meanAbsError(t *testing.T, segments int) float64 {
	t.Helper()
	c := MustNewConverter(segments)
	var sum float64
	var n int
	for r := 0; r < 256; r += 25 {
		for g := 0; g < 256; g += 25 {
			for b := 0; b < 256; b += 25 {
				l8, a8, b8 := c.Convert(uint8(r), uint8(g), uint8(b))
				lr, ar, br := refLab8(uint8(r), uint8(g), uint8(b))
				sum += math.Abs(float64(int(l8) - int(lr)))
				sum += math.Abs(float64(int(a8) - int(ar)))
				sum += math.Abs(float64(int(b8) - int(br)))
				n += 3
			}
		}
	}
	return sum / float64(n)
}

func TestLabFFixedMonotone(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	prev := int32(-1)
	for tq := int32(0); tq <= one; tq += 64 {
		f := c.labFFixed(tq)
		if f < prev {
			t.Fatalf("labFFixed not monotone at t=%d", tq)
		}
		prev = f
	}
}

func TestLabFFixedClampsOutOfRange(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	if c.labFFixed(-100) != c.labFFixed(0) {
		t.Fatal("negative input must clamp to 0")
	}
	if c.labFFixed(one+5000) != c.labFFixed(one) {
		t.Fatal("input above 1.0 must clamp")
	}
}

func TestLabFFixedMatchesEquation4(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	labF := func(tt float64) float64 {
		if tt > 0.008856 {
			return math.Cbrt(tt)
		}
		return (903.3*tt + 16) / 116
	}
	prop := func(raw uint16) bool {
		tq := int32(raw)
		got := float64(c.labFFixed(tq)) / one
		want := labF(float64(tq) / one)
		return math.Abs(got-want) < 0.01
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestGammaLUTExhaustive checks every one of the 256 gamma entries —
// the full input domain of the sRGB LUT — against the float64 reference
// transfer function. The ROM must round-to-nearest exactly: zero ULP of
// slack in Q0.16.
func TestGammaLUTExhaustive(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	for i := 0; i < gammaEntries; i++ {
		want := int32(math.Round(colorspace.SRGBToLinear(float64(i)/255) * one))
		if c.gamma[i] != want {
			t.Fatalf("gamma[%d] = %d, want %d", i, c.gamma[i], want)
		}
	}
	// Endpoints are exact by construction: 0 → 0, 255 → 1.0.
	if c.gamma[0] != 0 || c.gamma[255] != one {
		t.Fatalf("gamma endpoints %d, %d", c.gamma[0], c.gamma[255])
	}
}

// TestLabFFixedExhaustiveDomain sweeps the cube-root PWL across its
// entire Q0.16 input domain, all 65537 values, against Equation 4's
// float64 form. The pinned bound (0.0065 ≈ 426 LSB) sits just above the
// measured worst case of the 8-segment minimax fit (0.0059); a wrong
// slope, breakpoint, or segment select moves the error by orders of
// magnitude.
func TestLabFFixedExhaustiveDomain(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	labF := func(tt float64) float64 {
		if tt > 0.008856 {
			return math.Cbrt(tt)
		}
		return (903.3*tt + 16) / 116
	}
	var maxAbs float64
	for tq := int32(0); tq <= one; tq++ {
		got := float64(c.labFFixed(tq)) / one
		want := labF(float64(tq) / one)
		if e := math.Abs(got - want); e > maxAbs {
			maxAbs = e
		}
	}
	if maxAbs > 0.0065 {
		t.Fatalf("max |labFFixed - f| = %.6f over full domain, want <= 0.0065", maxAbs)
	}
}

// TestLabFFixedSegmentSelectExhaustive proves the priority-encode
// segment select against a straight loop over the breakpoint table, for
// every input value and every legal segment count. The two formulations
// must agree bit for bit — the encode is an optimization, not an
// approximation.
func TestLabFFixedSegmentSelectExhaustive(t *testing.T) {
	for _, segments := range []int{2, 3, 8, 24} {
		c := MustNewConverter(segments)
		ref := func(t32 int32) int32 {
			if t32 < 0 {
				t32 = 0
			}
			if t32 > one {
				t32 = one
			}
			// Octaves below one LSB don't exist in Q0.16: k stops at
			// fracBits-1, everything smaller is the bottom segment. (The
			// pre-encode loop implementation missed that cap and shifted
			// by a negative amount on t=0 with segments > 17.)
			for k := 0; k < c.segments-1 && k < fracBits; k++ {
				if t32 >= int32(1)<<(fracBits-k-1) {
					dt := int64(t32 - c.segT0[k])
					return c.segBase[k] + int32((dt*int64(c.segSlope[k]))>>fracBits)
				}
			}
			last := c.segments - 1
			return c.segBase[last] + int32((int64(t32)*int64(c.segSlope[last]))>>fracBits)
		}
		for tq := int32(-2); tq <= one+2; tq++ {
			if got, want := c.labFFixed(tq), ref(tq); got != want {
				t.Fatalf("segments=%d t=%d: priority encode %d, loop reference %d", segments, tq, got, want)
			}
		}
	}
}

// TestConvertExhaustiveGrayAndPrimaries runs the full integer pipeline
// over every 8-bit input on the axes that cover all three LUT channels —
// the gray ramp plus the pure R, G, B ramps — against the float64
// reference, bounding the worst deviation in output code units.
func TestConvertExhaustiveGrayAndPrimaries(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	var maxD int
	check := func(r, g, b uint8) {
		l8, a8, b8 := c.Convert(r, g, b)
		lr, ar, br := refLab8(r, g, b)
		maxD = maxInt(maxD, absInt(int(l8)-int(lr)))
		maxD = maxInt(maxD, absInt(int(a8)-int(ar)))
		maxD = maxInt(maxD, absInt(int(b8)-int(br)))
	}
	for v := 0; v < 256; v++ {
		check(uint8(v), uint8(v), uint8(v))
		check(uint8(v), 0, 0)
		check(0, uint8(v), 0)
		check(0, 0, uint8(v))
	}
	if maxD > 8 {
		t.Fatalf("max deviation %d codes on exhaustive axes, want <= 8", maxD)
	}
}

func TestConvertImage(t *testing.T) {
	c := MustNewConverter(DefaultSegments)
	im := imgio.NewImage(3, 2)
	im.Set(0, 0, 255, 0, 0)
	im.Set(1, 0, 0, 255, 0)
	im.Set(2, 0, 255, 255, 255)
	out := c.ConvertImage(im)
	if out.W != 3 || out.H != 2 {
		t.Fatal("dims changed")
	}
	l8, a8, b8 := c.Convert(255, 0, 0)
	if o0, o1, o2 := out.At(0, 0); o0 != l8 || o1 != a8 || o2 != b8 {
		t.Fatal("ConvertImage disagrees with Convert")
	}
	// Red must have a >> 128 (positive a*).
	if a8 <= 150 {
		t.Fatalf("red a* = %d, expected strongly positive", a8)
	}
}

func TestTableBytes(t *testing.T) {
	c := MustNewConverter(8)
	// 256 16-bit gamma entries + 8 base/slope pairs of 16 bits.
	want := 256*2 + 8*2*2
	if c.TableBytes() != want {
		t.Fatalf("TableBytes = %d, want %d", c.TableBytes(), want)
	}
	if c.Segments() != 8 {
		t.Fatalf("Segments = %d", c.Segments())
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
