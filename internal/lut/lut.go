// Package lut is the bit-accurate software model of the accelerator's
// Color Conversion Unit (paper §4.3, §6.1). The unit converts 8-bit sRGB
// to an 8-bit CIELAB encoding entirely with integer arithmetic and two
// look-up tables:
//
//   - a 256-entry LUT for the sRGB gamma power function of Equation 1
//     (one entry per possible 8-bit input), and
//   - an 8-segment piecewise-linear approximation of the cube-root power
//     function of Equation 4, with octave (power-of-two) breakpoints so
//     segment selection is a priority encode in hardware.
//
// The paper selects these structures after the bit-width exploration shows
// an 8-bit datapath loses almost no accuracy; this package is what makes
// that claim testable against the float64 reference in
// internal/colorspace.
package lut

import (
	"fmt"
	"math"
	"math/bits"

	"sslic/internal/colorspace"
	"sslic/internal/imgio"
)

// Fixed-point scaling of the internal datapath. Linear color, XYZ and the
// f(·) values are carried in Q0.16; the 3×3 matrix and the white-point
// reciprocals in Q2.14.
const (
	fracBits     = 16
	one          = 1 << fracBits
	matBits      = 14
	gammaEntries = 256
)

// DefaultSegments is the number of piecewise-linear segments the paper's
// design uses for the XYZ→Lab power function.
const DefaultSegments = 8

// Converter holds the LUT contents for a particular configuration. The
// zero value is not usable; call NewConverter.
type Converter struct {
	segments int

	gamma [gammaEntries]int32 // Q0.16 linear value per 8-bit sRGB code
	mat   [3][3]int32         // Q2.14 RGB→XYZ matrix
	invW  [3]int32            // Q2.14 reciprocal white point per XYZ channel

	// Piecewise-linear cube root: segment k covers t ∈ [2^-(k+1), 2^-k)
	// (k = 0 is the top octave [1/2, 1]); the final segment covers
	// [0, 2^-(segments-1)) with the linear branch of Equation 4.
	segBase  []int32 // Q0.16 f(t) at segment start
	segSlope []int32 // Q0.16 secant slope df/dt over the segment
	segT0    []int32 // Q0.16 segment start abscissa
}

// NewConverter builds a converter with the given number of PWL segments
// (≥ 2; the paper uses 8).
func NewConverter(segments int) (*Converter, error) {
	if segments < 2 || segments > 24 {
		return nil, fmt.Errorf("lut: segment count %d out of range [2, 24]", segments)
	}
	c := &Converter{segments: segments}

	// Gamma LUT (Equation 1): 8-bit sRGB code → Q0.16 linear.
	for i := 0; i < gammaEntries; i++ {
		lin := colorspace.SRGBToLinear(float64(i) / 255)
		c.gamma[i] = int32(math.Round(lin * one))
	}

	// RGB→XYZ matrix (Equation 2) in Q2.14.
	ref := [3][3]float64{
		{0.412453, 0.357580, 0.180423},
		{0.212671, 0.715160, 0.072169},
		{0.019334, 0.119193, 0.950227},
	}
	for r := 0; r < 3; r++ {
		for cidx := 0; cidx < 3; cidx++ {
			c.mat[r][cidx] = int32(math.Round(ref[r][cidx] * (1 << matBits)))
		}
	}
	whites := [3]float64{colorspace.WhiteX, colorspace.WhiteY, colorspace.WhiteZ}
	for i, w := range whites {
		c.invW[i] = int32(math.Round((1 / w) * (1 << matBits)))
	}

	// PWL cube root (Equation 4) with octave breakpoints. Segment k spans
	// [2^-(k+1), 2^-k) for k in [0, segments-2]; the last segment spans
	// [0, 2^-(segments-1)) and uses Equation 4's linear branch, which is
	// exact there when the knee falls inside it.
	n := segments
	c.segBase = make([]int32, n)
	c.segSlope = make([]int32, n)
	c.segT0 = make([]int32, n)
	labF := func(t float64) float64 {
		if t > 0.008856 {
			return math.Cbrt(t)
		}
		return (903.3*t + 16) / 116
	}
	for k := 0; k < n-1; k++ {
		hi := math.Pow(2, float64(-k))
		lo := hi / 2
		f0 := labF(lo)
		f1 := labF(hi)
		slope := (f1 - f0) / (hi - lo)
		// Minimax fit: the cube root is concave, so the secant through the
		// endpoints under-estimates everywhere inside the segment; lifting
		// the line by half the maximum deviation halves the worst-case
		// error at zero hardware cost (the offset folds into the ROM
		// constant). Find the deviation numerically.
		maxDev := 0.0
		for i := 1; i < 64; i++ {
			tt := lo + (hi-lo)*float64(i)/64
			if dev := labF(tt) - (f0 + slope*(tt-lo)); dev > maxDev {
				maxDev = dev
			}
		}
		c.segT0[k] = int32(math.Round(lo * one))
		c.segBase[k] = int32(math.Round((f0 + maxDev/2) * one))
		// Store the slope Δf/Δt in Q0.16; interpolation is then a
		// multiply and shift, no divider needed.
		c.segSlope[k] = int32(math.Round(slope * one))
	}
	// Bottom segment: linear branch coefficients.
	last := n - 1
	c.segT0[last] = 0
	c.segBase[last] = int32(math.Round(16.0 / 116 * one))
	c.segSlope[last] = int32(math.Round(903.3 / 116 * one))
	return c, nil
}

// MustNewConverter is NewConverter but panics on error.
func MustNewConverter(segments int) *Converter {
	c, err := NewConverter(segments)
	if err != nil {
		panic(err)
	}
	return c
}

// Segments returns the configured PWL segment count.
func (c *Converter) Segments() int { return c.segments }

// labFFixed evaluates the PWL approximation of Equation 4's f(·) on a
// Q0.16 input in [0, one], returning a Q0.16 result. Segment selection is
// a priority encode on the leading set bit, as the hardware does.
func (c *Converter) labFFixed(t int32) int32 {
	if t < 0 {
		t = 0
	}
	if t > one {
		t = one
	}
	// Octave k hosts t ∈ [2^(16-k-1), 2^(16-k)), so k is the number of
	// leading zeros of t within the Q0.16 word — a single priority encode
	// on the leading set bit, exactly the hardware's segment select.
	// Inputs below the last breakpoint — including t = 0, where no bit is
	// set at all — take the bottom linear segment (whose segT0 is 0).
	var k int
	if t == 0 {
		k = c.segments - 1
	} else {
		k = fracBits - bits.Len32(uint32(t))
		if k < 0 {
			k = 0 // t == one: top octave
		}
		if k > c.segments-1 {
			k = c.segments - 1
		}
	}
	dt := int64(t - c.segT0[k])
	return c.segBase[k] + int32((dt*int64(c.segSlope[k]))>>fracBits)
}

// Convert maps one 8-bit sRGB pixel to the 8-bit Lab encoding used by the
// accelerator scratchpads: L ∈ [0,100] scaled to [0,255]; a and b offset
// by +128. The whole path is integer arithmetic and table lookups.
func (c *Converter) Convert(r, g, b uint8) (l8, a8, b8 uint8) {
	// Gamma LUT.
	rl := int64(c.gamma[r])
	gl := int64(c.gamma[g])
	bl := int64(c.gamma[b])

	// Matrix multiply; results Q0.16.
	var xyz [3]int64
	for row := 0; row < 3; row++ {
		xyz[row] = (int64(c.mat[row][0])*rl + int64(c.mat[row][1])*gl + int64(c.mat[row][2])*bl) >> matBits
	}

	// Normalize by white and evaluate the PWL f(·).
	var f [3]int32
	for i := 0; i < 3; i++ {
		t := (xyz[i] * int64(c.invW[i])) >> matBits
		f[i] = c.labFFixed(int32(t))
	}

	// Equation 3 in integer form; L in Q0.16 of [0,1] after dividing the
	// 116·f − 16 range by 100.
	lQ := (116*int64(f[1]) - 16*one) // L·2^16, L in [0,100]
	aQ := 500 * (int64(f[0]) - int64(f[1]))
	bQ := 200 * (int64(f[1]) - int64(f[2]))

	l8 = clampU8((lQ*255/100 + one/2) >> fracBits)
	a8 = clampU8((aQ + 128*one + one/2) >> fracBits)
	b8 = clampU8((bQ + 128*one + one/2) >> fracBits)
	return l8, a8, b8
}

// ConvertImage converts an RGB image into the 8-bit Lab planar encoding,
// returning a new image whose channels are L, a, b.
func (c *Converter) ConvertImage(im *imgio.Image) *imgio.Image {
	out := imgio.NewImage(im.W, im.H)
	for i := 0; i < im.Pixels(); i++ {
		out.C0[i], out.C1[i], out.C2[i] = c.Convert(im.C0[i], im.C1[i], im.C2[i])
	}
	return out
}

// TableBytes returns the total ROM footprint of the converter's tables in
// bytes, used by the hardware area model: 256 gamma entries plus
// base/slope pairs per PWL segment, at 16 bits each.
func (c *Converter) TableBytes() int {
	return gammaEntries*2 + c.segments*2*2
}

func clampU8(v int64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
