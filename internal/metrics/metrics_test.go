package metrics

import (
	"math"
	"testing"

	"sslic/internal/imgio"
)

// grid builds a label map of r×c equal rectangular regions.
func grid(w, h, cols, rows int) *imgio.LabelMap {
	lm := imgio.NewLabelMap(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			gx := x * cols / w
			gy := y * rows / h
			lm.Set(x, y, int32(gy*cols+gx))
		}
	}
	return lm
}

func TestUSEPerfectNesting(t *testing.T) {
	// A 4×4 grid nests perfectly inside a 2×2 grid: USE must be ~0.
	sp := grid(64, 64, 4, 4)
	gt := grid(64, 64, 2, 2)
	use, err := UndersegmentationError(sp, gt)
	if err != nil {
		t.Fatal(err)
	}
	if use != 0 {
		t.Fatalf("USE = %g for perfectly nested segmentation, want 0", use)
	}
}

func TestUSEIdentity(t *testing.T) {
	gt := grid(32, 32, 2, 2)
	use, err := UndersegmentationError(gt, gt)
	if err != nil {
		t.Fatal(err)
	}
	if use != 0 {
		t.Fatalf("USE(x, x) = %g, want 0", use)
	}
}

func TestUSEDetectsStraddling(t *testing.T) {
	// One big superpixel across two ground-truth halves leaks fully: each
	// gt half claims the whole superpixel → USE = (2N - N)/N = 1.
	sp := grid(32, 32, 1, 1)
	gt := grid(32, 32, 2, 1)
	use, err := UndersegmentationError(sp, gt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(use-1) > 1e-9 {
		t.Fatalf("USE = %g, want 1", use)
	}
}

func TestUSEIgnoresTinyOverlap(t *testing.T) {
	// A superpixel overlapping a gt region by <5% of its own area does
	// not leak. 100×1 strip: sp covers x∈[0,99]; gt region B covers only
	// x∈[96,99] (4%).
	sp := imgio.NewLabelMap(100, 1)
	gt := imgio.NewLabelMap(100, 1)
	for x := 0; x < 100; x++ {
		sp.Set(x, 0, 0)
		if x < 96 {
			gt.Set(x, 0, 0)
		} else {
			gt.Set(x, 0, 1)
		}
	}
	use, err := UndersegmentationError(sp, gt)
	if err != nil {
		t.Fatal(err)
	}
	if use != 0 {
		t.Fatalf("USE = %g, want 0 (4%% overlap is under the threshold)", use)
	}
}

func TestUSEMoreSuperpixelsNotWorse(t *testing.T) {
	// Refining the segmentation (perfect 8×8 vs coarse 2×2 against the
	// same 4×4 gt): the aligned finer grid must not have higher USE.
	gt := grid(64, 64, 4, 4)
	fine := grid(64, 64, 8, 8)
	coarse := grid(64, 64, 2, 2)
	useFine, _ := UndersegmentationError(fine, gt)
	useCoarse, _ := UndersegmentationError(coarse, gt)
	if useFine > useCoarse {
		t.Fatalf("fine USE %g > coarse USE %g", useFine, useCoarse)
	}
}

func TestBoundaryRecallPerfect(t *testing.T) {
	gt := grid(32, 32, 2, 2)
	br, err := BoundaryRecall(gt, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if br != 1 {
		t.Fatalf("BR(x, x) = %g, want 1", br)
	}
}

func TestBoundaryRecallZeroForUniform(t *testing.T) {
	sp := grid(32, 32, 1, 1) // no boundaries at all
	gt := grid(32, 32, 2, 2)
	br, err := BoundaryRecall(sp, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if br != 0 {
		t.Fatalf("BR = %g, want 0", br)
	}
}

func TestBoundaryRecallNoGTBoundaries(t *testing.T) {
	sp := grid(32, 32, 4, 4)
	gt := grid(32, 32, 1, 1)
	br, err := BoundaryRecall(sp, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if br != 1 {
		t.Fatalf("BR with empty gt boundary = %g, want 1 by convention", br)
	}
}

func TestBoundaryRecallToleranceWidens(t *testing.T) {
	// sp boundary shifted 3 px from gt boundary: tol 2 misses, tol 3 hits.
	sp := imgio.NewLabelMap(32, 8)
	gt := imgio.NewLabelMap(32, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				gt.Set(x, y, 0)
			} else {
				gt.Set(x, y, 1)
			}
			if x < 19 {
				sp.Set(x, y, 0)
			} else {
				sp.Set(x, y, 1)
			}
		}
	}
	// Boundary masks are two-sided: gt marks x=15 and x=16, sp marks x=18
	// and x=19. At tolerance 2 only the x=16 side reaches x=18 → recall
	// 0.5; at tolerance 3 both sides are covered → recall 1.
	br2, _ := BoundaryRecall(sp, gt, 2)
	br3, _ := BoundaryRecall(sp, gt, 3)
	if br2 != 0.5 {
		t.Fatalf("tol 2: BR = %g, want 0.5", br2)
	}
	if br3 != 1 {
		t.Fatalf("tol 3: BR = %g, want 1", br3)
	}
}

func TestBoundaryRecallRejectsNegativeTolerance(t *testing.T) {
	gt := grid(8, 8, 2, 2)
	if _, err := BoundaryRecall(gt, gt, -1); err == nil {
		t.Fatal("want error for negative tolerance")
	}
}

func TestASAPerfect(t *testing.T) {
	sp := grid(64, 64, 4, 4)
	gt := grid(64, 64, 2, 2)
	asa, err := AchievableSegmentationAccuracy(sp, gt)
	if err != nil {
		t.Fatal(err)
	}
	if asa != 1 {
		t.Fatalf("ASA = %g for nested segmentation, want 1", asa)
	}
}

func TestASAHalfForStraddling(t *testing.T) {
	sp := grid(32, 32, 1, 1)
	gt := grid(32, 32, 2, 1)
	asa, err := AchievableSegmentationAccuracy(sp, gt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(asa-0.5) > 1e-9 {
		t.Fatalf("ASA = %g, want 0.5", asa)
	}
}

func TestExplainedVariation(t *testing.T) {
	// Image with two flat halves: a matching segmentation explains all
	// variance; a uniform segmentation explains none.
	im := imgio.NewImage(32, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				im.Set(x, y, 200, 0, 0)
			} else {
				im.Set(x, y, 0, 0, 200)
			}
		}
	}
	matching := grid(32, 16, 2, 1)
	uniform := grid(32, 16, 1, 1)
	evMatch, err := ExplainedVariation(im, matching)
	if err != nil {
		t.Fatal(err)
	}
	evUni, err := ExplainedVariation(im, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evMatch-1) > 1e-9 {
		t.Fatalf("matching EV = %g, want 1", evMatch)
	}
	if math.Abs(evUni) > 1e-9 {
		t.Fatalf("uniform EV = %g, want 0", evUni)
	}
}

func TestExplainedVariationConstantImage(t *testing.T) {
	im := imgio.NewImage(8, 8)
	sp := grid(8, 8, 2, 2)
	ev, err := ExplainedVariation(im, sp)
	if err != nil {
		t.Fatal(err)
	}
	if ev != 1 {
		t.Fatalf("EV on constant image = %g, want 1", ev)
	}
}

func TestCompactnessSquareVsStripes(t *testing.T) {
	// Square regions are more compact than long stripes of equal area.
	squares := grid(64, 64, 4, 4)  // 16×16 squares
	stripes := grid(64, 64, 16, 1) // 4×64 stripes
	cs := Compactness(squares)
	cst := Compactness(stripes)
	if cs <= cst {
		t.Fatalf("squares %.3f not more compact than stripes %.3f", cs, cst)
	}
	if cs <= 0 || cs > 1 || cst <= 0 || cst > 1 {
		t.Fatalf("compactness out of (0,1]: %g, %g", cs, cst)
	}
}

func TestMetricsSizeMismatchErrors(t *testing.T) {
	a := grid(8, 8, 2, 2)
	b := grid(9, 8, 2, 2)
	if _, err := UndersegmentationError(a, b); err == nil {
		t.Error("USE accepted mismatched sizes")
	}
	if _, err := BoundaryRecall(a, b, 2); err == nil {
		t.Error("BR accepted mismatched sizes")
	}
	if _, err := AchievableSegmentationAccuracy(a, b); err == nil {
		t.Error("ASA accepted mismatched sizes")
	}
	if _, err := ExplainedVariation(imgio.NewImage(8, 8), b); err == nil {
		t.Error("EV accepted mismatched sizes")
	}
}

func TestEvaluateBundlesAll(t *testing.T) {
	im := imgio.NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 16 {
				im.Set(x, y, 220, 30, 30)
			} else {
				im.Set(x, y, 30, 30, 220)
			}
		}
	}
	sp := grid(32, 32, 4, 4)
	gt := grid(32, 32, 2, 1)
	s, err := Evaluate(im, sp, gt)
	if err != nil {
		t.Fatal(err)
	}
	if s.USE != 0 {
		t.Errorf("USE = %g, want 0 (nested)", s.USE)
	}
	if s.BoundaryRec != 1 {
		t.Errorf("BR = %g, want 1", s.BoundaryRec)
	}
	if s.ASA != 1 {
		t.Errorf("ASA = %g, want 1", s.ASA)
	}
	if s.Regions != 16 {
		t.Errorf("Regions = %d, want 16", s.Regions)
	}
	if s.Compactness <= 0 {
		t.Errorf("Compactness = %g", s.Compactness)
	}
}
