// Package metrics implements the superpixel quality metrics the paper
// evaluates with (§3, Figure 2): undersegmentation error and boundary
// recall, both defined against a ground-truth segmentation, plus the
// auxiliary metrics commonly reported alongside them (achievable
// segmentation accuracy, explained variation, compactness).
package metrics

import (
	"fmt"
	"math"

	"sslic/internal/imgio"
)

// overlapTable builds the contingency counts between a computed
// segmentation sp and ground truth gt: one map of region→(gt region→count)
// plus total sizes.
func overlapTable(sp, gt *imgio.LabelMap) (map[int32]map[int32]int, map[int32]int, error) {
	if sp.W != gt.W || sp.H != gt.H {
		return nil, nil, fmt.Errorf("metrics: size mismatch %dx%d vs %dx%d", sp.W, sp.H, gt.W, gt.H)
	}
	overlaps := make(map[int32]map[int32]int)
	sizes := make(map[int32]int)
	for i, s := range sp.Labels {
		g := gt.Labels[i]
		m := overlaps[s]
		if m == nil {
			m = make(map[int32]int)
			overlaps[s] = m
		}
		m[g]++
		sizes[s]++
	}
	return overlaps, sizes, nil
}

// UndersegmentationError computes the USE of Achanta et al. (TPAMI 2012):
// for every ground-truth region, superpixels that overlap it by more than
// 5% of their own area count their full area as potential leakage; the
// total, minus the image size, normalized by the image size, is the
// error. Lower is better; 0 means every superpixel nests perfectly inside
// one ground-truth region.
func UndersegmentationError(sp, gt *imgio.LabelMap) (float64, error) {
	overlaps, sizes, err := overlapTable(sp, gt)
	if err != nil {
		return 0, err
	}
	n := sp.W * sp.H
	var total int
	for s, m := range overlaps {
		for _, cnt := range m {
			if float64(cnt) > 0.05*float64(sizes[s]) {
				total += sizes[s]
			}
		}
	}
	return float64(total-n) / float64(n), nil
}

// BoundaryRecall computes the fraction of ground-truth boundary pixels
// that lie within tolerance (Chebyshev distance, in pixels) of a computed
// boundary pixel. The conventional tolerance is 2. Higher is better.
func BoundaryRecall(sp, gt *imgio.LabelMap, tolerance int) (float64, error) {
	if sp.W != gt.W || sp.H != gt.H {
		return 0, fmt.Errorf("metrics: size mismatch %dx%d vs %dx%d", sp.W, sp.H, gt.W, gt.H)
	}
	if tolerance < 0 {
		return 0, fmt.Errorf("metrics: negative tolerance %d", tolerance)
	}
	spMask := sp.BoundaryMask()
	w, h := gt.W, gt.H
	var gtBoundary, hit int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !gt.IsBoundary(x, y) {
				continue
			}
			gtBoundary++
			if nearMask(spMask, w, h, x, y, tolerance) {
				hit++
			}
		}
	}
	if gtBoundary == 0 {
		return 1, nil // no boundaries to recall
	}
	return float64(hit) / float64(gtBoundary), nil
}

func nearMask(mask []bool, w, h, x, y, tol int) bool {
	for dy := -tol; dy <= tol; dy++ {
		ny := y + dy
		if ny < 0 || ny >= h {
			continue
		}
		row := ny * w
		for dx := -tol; dx <= tol; dx++ {
			nx := x + dx
			if nx < 0 || nx >= w {
				continue
			}
			if mask[row+nx] {
				return true
			}
		}
	}
	return false
}

// AchievableSegmentationAccuracy computes ASA: the accuracy an oracle
// achieves by labeling every superpixel with its dominant ground-truth
// region. Higher is better; 1 means perfect nesting.
func AchievableSegmentationAccuracy(sp, gt *imgio.LabelMap) (float64, error) {
	overlaps, _, err := overlapTable(sp, gt)
	if err != nil {
		return 0, err
	}
	var total int
	for _, m := range overlaps {
		best := 0
		for _, cnt := range m {
			if cnt > best {
				best = cnt
			}
		}
		total += best
	}
	return float64(total) / float64(sp.W*sp.H), nil
}

// ExplainedVariation computes the R² of Moore et al.: how much of the
// image's color variance the superpixel means explain. Computed on the
// three channels jointly. Higher is better.
func ExplainedVariation(im *imgio.Image, sp *imgio.LabelMap) (float64, error) {
	if im.W != sp.W || im.H != sp.H {
		return 0, fmt.Errorf("metrics: size mismatch %dx%d vs %dx%d", im.W, im.H, sp.W, sp.H)
	}
	n := im.Pixels()
	// Global mean.
	var gm [3]float64
	for i := 0; i < n; i++ {
		gm[0] += float64(im.C0[i])
		gm[1] += float64(im.C1[i])
		gm[2] += float64(im.C2[i])
	}
	for c := range gm {
		gm[c] /= float64(n)
	}
	// Per-region means.
	type acc struct {
		s [3]float64
		n int
	}
	regions := make(map[int32]*acc)
	for i, v := range sp.Labels {
		a := regions[v]
		if a == nil {
			a = &acc{}
			regions[v] = a
		}
		a.s[0] += float64(im.C0[i])
		a.s[1] += float64(im.C1[i])
		a.s[2] += float64(im.C2[i])
		a.n++
	}
	var between, total float64
	for _, a := range regions {
		for c := 0; c < 3; c++ {
			mean := a.s[c] / float64(a.n)
			between += float64(a.n) * (mean - gm[c]) * (mean - gm[c])
		}
	}
	for i := 0; i < n; i++ {
		for c, ch := range [][]uint8{im.C0, im.C1, im.C2} {
			d := float64(ch[i]) - gm[c]
			total += d * d
		}
	}
	if total == 0 {
		return 1, nil // constant image: trivially explained
	}
	return between / total, nil
}

// Compactness computes the Schick et al. compactness measure: the
// area-weighted mean isoperimetric quotient 4π·A/P² of the superpixels.
// Higher (closer to 1) means rounder superpixels.
func Compactness(sp *imgio.LabelMap) float64 {
	sizes := sp.RegionSizes()
	perims := regionPerimeters(sp)
	n := float64(sp.W * sp.H)
	var co float64
	for lbl, area := range sizes {
		p := float64(perims[lbl])
		if p == 0 {
			continue
		}
		q := 4 * math.Pi * float64(area) / (p * p)
		if q > 1 {
			q = 1 // digital perimeters can make tiny regions exceed 1
		}
		co += float64(area) / n * q
	}
	return co
}

// regionPerimeters counts boundary edge segments per region: each pixel
// side facing a different label or the image border adds 1.
func regionPerimeters(sp *imgio.LabelMap) map[int32]int {
	w, h := sp.W, sp.H
	out := make(map[int32]int)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := sp.At(x, y)
			if x == 0 || sp.At(x-1, y) != v {
				out[v]++
			}
			if x == w-1 || sp.At(x+1, y) != v {
				out[v]++
			}
			if y == 0 || sp.At(x, y-1) != v {
				out[v]++
			}
			if y == h-1 || sp.At(x, y+1) != v {
				out[v]++
			}
		}
	}
	return out
}

// Summary bundles the standard metric set for one segmentation.
type Summary struct {
	USE          float64
	BoundaryRec  float64
	ASA          float64
	ExplainedVar float64
	Compactness  float64
	Regions      int
}

// Evaluate computes the full Summary of sp against ground truth gt on
// image im, using the conventional boundary tolerance of 2 pixels.
func Evaluate(im *imgio.Image, sp, gt *imgio.LabelMap) (Summary, error) {
	var s Summary
	var err error
	if s.USE, err = UndersegmentationError(sp, gt); err != nil {
		return s, err
	}
	if s.BoundaryRec, err = BoundaryRecall(sp, gt, 2); err != nil {
		return s, err
	}
	if s.ASA, err = AchievableSegmentationAccuracy(sp, gt); err != nil {
		return s, err
	}
	if s.ExplainedVar, err = ExplainedVariation(im, sp); err != nil {
		return s, err
	}
	s.Compactness = Compactness(sp)
	s.Regions = sp.NumRegions()
	return s, nil
}
