package metrics

import "math"

// Aggregate accumulates a scalar metric over a corpus and reports mean,
// standard deviation and extrema — the per-corpus statistics the paper's
// Figure 2 averages over 100 Berkeley images.
type Aggregate struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (a *Aggregate) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
	a.sumSq += v * v
}

// N returns the observation count.
func (a *Aggregate) N() int { return a.n }

// Mean returns the sample mean (0 for an empty aggregate).
func (a *Aggregate) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Std returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two observations).
func (a *Aggregate) Std() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := (a.sumSq - float64(a.n)*m*m) / float64(a.n-1)
	if v < 0 {
		v = 0 // numerical floor
	}
	return math.Sqrt(v)
}

// Min and Max return the extrema (0 for an empty aggregate).
func (a *Aggregate) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation.
func (a *Aggregate) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}
