package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggregateBasics(t *testing.T) {
	var a Aggregate
	if a.N() != 0 || a.Mean() != 0 || a.Std() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("empty aggregate must be all zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Fatalf("mean %g", a.Mean())
	}
	// Sample std of this classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7)
	if math.Abs(a.Std()-want) > 1e-12 {
		t.Fatalf("std %g, want %g", a.Std(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("extrema %g/%g", a.Min(), a.Max())
	}
}

func TestAggregateSingleObservation(t *testing.T) {
	var a Aggregate
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Std() != 0 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatal("single-observation stats wrong")
	}
}

func TestAggregateProperties(t *testing.T) {
	prop := func(vals []float64) bool {
		var a Aggregate
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float blowup in sumSq.
			v = math.Mod(v, 1e6)
			a.Add(v)
			ok = ok && a.Min() <= a.Mean()+1e-9 && a.Mean() <= a.Max()+1e-9
		}
		return ok && a.Std() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateConstantSeriesZeroStd(t *testing.T) {
	var a Aggregate
	for i := 0; i < 50; i++ {
		a.Add(0.125)
	}
	if a.Std() != 0 {
		t.Fatalf("constant series std %g", a.Std())
	}
}
