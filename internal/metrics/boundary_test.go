package metrics

import (
	"math"
	"testing"

	"sslic/internal/imgio"
)

func TestBoundaryPrecisionPerfect(t *testing.T) {
	gt := grid(32, 32, 2, 2)
	p, err := BoundaryPrecision(gt, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("precision(x, x) = %g", p)
	}
}

func TestBoundaryPrecisionPenalizesExtraBoundaries(t *testing.T) {
	// sp has many boundaries, gt only one: precision must be low while
	// recall stays perfect.
	sp := grid(64, 8, 16, 1)
	gt := grid(64, 8, 2, 1)
	p, err := BoundaryPrecision(sp, gt, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := BoundaryRecall(sp, gt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("recall = %g, want 1 (sp covers the gt boundary)", r)
	}
	if p > 0.5 {
		t.Fatalf("precision = %g, want low for oversegmentation", p)
	}
}

func TestBoundaryPrecisionNoPredictions(t *testing.T) {
	sp := grid(16, 16, 1, 1)
	gt := grid(16, 16, 2, 2)
	p, err := BoundaryPrecision(sp, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("precision with no predictions = %g, want 1 by convention", p)
	}
}

func TestBoundaryPrecisionErrors(t *testing.T) {
	a := grid(8, 8, 2, 2)
	b := grid(9, 8, 2, 2)
	if _, err := BoundaryPrecision(a, b, 2); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := BoundaryPrecision(a, a, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestBoundaryF1(t *testing.T) {
	gt := grid(32, 32, 2, 2)
	f1, err := BoundaryF1(gt, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 1 {
		t.Fatalf("F1(x, x) = %g", f1)
	}
	// Oversegmented: recall 1, precision < 1 → F1 strictly between.
	sp := grid(64, 8, 16, 1)
	gtc := grid(64, 8, 2, 1)
	f1, err = BoundaryF1(sp, gtc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f1 <= 0 || f1 >= 1 {
		t.Fatalf("F1 = %g, want in (0, 1)", f1)
	}
	p, _ := BoundaryPrecision(sp, gtc, 1)
	r, _ := BoundaryRecall(sp, gtc, 1)
	want := 2 * p * r / (p + r)
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("F1 = %g, want %g", f1, want)
	}
}

func TestBoundaryF1PropagatesErrors(t *testing.T) {
	a := grid(8, 8, 2, 2)
	b := grid(9, 8, 2, 2)
	if _, err := BoundaryF1(a, b, 2); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestContourDensity(t *testing.T) {
	// Uniform map: zero density.
	if d := ContourDensity(grid(16, 16, 1, 1)); d != 0 {
		t.Fatalf("uniform density = %g", d)
	}
	// Finer grids have strictly higher density.
	coarse := ContourDensity(grid(64, 64, 2, 2))
	fine := ContourDensity(grid(64, 64, 8, 8))
	if fine <= coarse {
		t.Fatalf("density not increasing: %g vs %g", coarse, fine)
	}
	// A vertical split of width w: two boundary columns of h pixels.
	lm := imgio.NewLabelMap(10, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 10; x++ {
			if x < 5 {
				lm.Set(x, y, 0)
			} else {
				lm.Set(x, y, 1)
			}
		}
	}
	if d := ContourDensity(lm); math.Abs(d-8.0/40) > 1e-12 {
		t.Fatalf("density = %g, want 0.2", d)
	}
}
