package metrics

import (
	"fmt"

	"sslic/internal/imgio"
)

// Boundary precision / F-score complement the paper's boundary recall:
// recall alone can be gamed by producing dense boundaries everywhere, so
// evaluations usually report the precision (how many predicted boundary
// pixels are near a true boundary) and their harmonic mean alongside it.

// BoundaryPrecision computes the fraction of computed boundary pixels
// that lie within tolerance (Chebyshev) of a ground-truth boundary
// pixel. Higher is better.
func BoundaryPrecision(sp, gt *imgio.LabelMap, tolerance int) (float64, error) {
	if sp.W != gt.W || sp.H != gt.H {
		return 0, fmt.Errorf("metrics: size mismatch %dx%d vs %dx%d", sp.W, sp.H, gt.W, gt.H)
	}
	if tolerance < 0 {
		return 0, fmt.Errorf("metrics: negative tolerance %d", tolerance)
	}
	gtMask := gt.BoundaryMask()
	w, h := sp.W, sp.H
	var spBoundary, hit int
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if !sp.IsBoundary(x, y) {
				continue
			}
			spBoundary++
			if nearMask(gtMask, w, h, x, y, tolerance) {
				hit++
			}
		}
	}
	if spBoundary == 0 {
		return 1, nil // no predictions → vacuously precise
	}
	return float64(hit) / float64(spBoundary), nil
}

// BoundaryF1 is the harmonic mean of boundary recall and precision at
// the given tolerance.
func BoundaryF1(sp, gt *imgio.LabelMap, tolerance int) (float64, error) {
	r, err := BoundaryRecall(sp, gt, tolerance)
	if err != nil {
		return 0, err
	}
	p, err := BoundaryPrecision(sp, gt, tolerance)
	if err != nil {
		return 0, err
	}
	if r+p == 0 {
		return 0, nil
	}
	return 2 * r * p / (r + p), nil
}

// ContourDensity is the fraction of image pixels that are boundary
// pixels — a proxy for oversegmentation: more superpixels mean denser
// contours, which inflates recall and deflates precision.
func ContourDensity(sp *imgio.LabelMap) float64 {
	mask := sp.BoundaryMask()
	count := 0
	for _, b := range mask {
		if b {
			count++
		}
	}
	return float64(count) / float64(len(mask))
}
