package sslic

import (
	"image"
	"image/color"
	"testing"
)

// testImage draws four colored quadrants.
func testImage(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var c color.RGBA
			switch {
			case x < w/2 && y < h/2:
				c = color.RGBA{230, 40, 40, 255}
			case x >= w/2 && y < h/2:
				c = color.RGBA{40, 230, 40, 255}
			case x < w/2:
				c = color.RGBA{40, 40, 230, 255}
			default:
				c = color.RGBA{230, 230, 40, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func TestSegmentDefault(t *testing.T) {
	img := testImage(64, 48)
	seg, err := Segment(img, DefaultOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	if seg.W != 64 || seg.H != 48 {
		t.Fatalf("dims %dx%d", seg.W, seg.H)
	}
	if len(seg.Labels) != 64*48 {
		t.Fatalf("labels %d", len(seg.Labels))
	}
	if seg.NumSegments < 8 || seg.NumSegments > 32 {
		t.Fatalf("segments %d, requested 16", seg.NumSegments)
	}
	for i, v := range seg.Labels {
		if v < 0 || int(v) >= seg.NumSegments {
			t.Fatalf("label %d at %d out of range", v, i)
		}
	}
	if seg.DistanceCalcs == 0 || seg.Iterations == 0 {
		t.Fatal("stats empty")
	}
}

func TestSegmentAllMethods(t *testing.T) {
	img := testImage(48, 48)
	for _, m := range []Method{SSLICPPA, SSLICCPA, SLIC} {
		opt := DefaultOptions(9)
		opt.Method = m
		seg, err := Segment(img, opt)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if seg.NumSegments < 4 {
			t.Fatalf("%v: only %d segments", m, seg.NumSegments)
		}
	}
}

func TestSegmentNilImage(t *testing.T) {
	if _, err := Segment(nil, DefaultOptions(10)); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestSegmentBadOptions(t *testing.T) {
	img := testImage(32, 32)
	opt := DefaultOptions(0)
	if _, err := Segment(img, opt); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSegmentFixedPoint(t *testing.T) {
	img := testImage(48, 48)
	opt := DefaultOptions(9)
	opt.FixedPointBits = 8
	seg, err := Segment(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumSegments < 4 {
		t.Fatalf("8-bit datapath produced %d segments", seg.NumSegments)
	}
}

func TestLabelAccessor(t *testing.T) {
	img := testImage(32, 32)
	seg, err := Segment(img, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if seg.Label(0, 0) != seg.Labels[0] {
		t.Fatal("Label accessor inconsistent")
	}
	if seg.Label(31, 31) != seg.Labels[31*32+31] {
		t.Fatal("Label accessor inconsistent at end")
	}
}

func TestOverlayAndMeanColor(t *testing.T) {
	img := testImage(48, 48)
	seg, err := Segment(img, DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	over := seg.Overlay(img, color.RGBA{255, 0, 0, 255})
	if over.Bounds().Dx() != 48 {
		t.Fatal("overlay dims")
	}
	// Some pixel must be painted boundary red.
	found := false
	mask := seg.BoundaryMask()
	for i, b := range mask {
		if b {
			x, y := i%48, i/48
			r, _, _, _ := over.At(x, y).RGBA()
			if r>>8 == 255 {
				found = true
			}
			break
		}
	}
	if !found {
		t.Fatal("no boundary pixel painted")
	}
	mean := seg.MeanColor(img)
	if mean.Bounds().Dx() != 48 {
		t.Fatal("mean color dims")
	}
	colored := seg.ColorizeLabels()
	if colored.Bounds().Dy() != 48 {
		t.Fatal("colorize dims")
	}
}

func TestRegionSizesSumToPixels(t *testing.T) {
	img := testImage(40, 30)
	seg, err := Segment(img, DefaultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range seg.RegionSizes() {
		total += n
	}
	if total != 40*30 {
		t.Fatalf("region sizes sum %d, want %d", total, 1200)
	}
}

func TestAdjacencyGraph(t *testing.T) {
	img := testImage(48, 48)
	seg, err := Segment(img, DefaultOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	adj := seg.AdjacencyGraph()
	if len(adj) == 0 {
		t.Fatal("empty adjacency graph")
	}
	// Symmetry: a in adj[b] ⇒ b in adj[a].
	for v, ns := range adj {
		for _, n := range ns {
			found := false
			for _, back := range adj[n] {
				if back == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d→%d", v, n)
			}
		}
	}
	// Sorted neighbor lists.
	for v, ns := range adj {
		for i := 1; i < len(ns); i++ {
			if ns[i] < ns[i-1] {
				t.Fatalf("neighbors of %d not sorted", v)
			}
		}
	}
}

func TestEvaluateAgainstGroundTruth(t *testing.T) {
	img := testImage(64, 64)
	seg, err := Segment(img, DefaultOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth = the four quadrants.
	gtLabels := make([]int32, 64*64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			var v int32
			if x >= 32 {
				v = 1
			}
			if y >= 32 {
				v += 2
			}
			gtLabels[y*64+x] = v
		}
	}
	gt, err := NewGroundTruth(64, 64, gtLabels)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(img, seg, gt)
	if err != nil {
		t.Fatal(err)
	}
	if m.UndersegmentationError > 0.1 {
		t.Errorf("USE %.3f too high on clean quadrants", m.UndersegmentationError)
	}
	if m.BoundaryRecall < 0.9 {
		t.Errorf("BR %.3f too low on clean quadrants", m.BoundaryRecall)
	}
	if m.AchievableSegmentationAccuracy < 0.95 {
		t.Errorf("ASA %.3f too low", m.AchievableSegmentationAccuracy)
	}
	if m.Compactness <= 0 || m.ExplainedVariation <= 0.5 {
		t.Errorf("suspicious metrics: %+v", m)
	}
}

func TestNewGroundTruthValidates(t *testing.T) {
	if _, err := NewGroundTruth(4, 4, make([]int32, 15)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestEvaluateNilArgs(t *testing.T) {
	img := testImage(8, 8)
	if _, err := Evaluate(img, nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestSimulateAcceleratorDefault(t *testing.T) {
	r, err := SimulateAccelerator(DefaultAcceleratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.RealTime {
		t.Error("default HD design must be real-time")
	}
	if r.LatencyMS < 30 || r.LatencyMS > 36 {
		t.Errorf("latency %.1f ms, expected ~33", r.LatencyMS)
	}
	if r.PowerMW < 45 || r.PowerMW > 55 {
		t.Errorf("power %.1f mW, expected ~49", r.PowerMW)
	}
}

func TestSimulateAcceleratorOverrides(t *testing.T) {
	cfg := DefaultAcceleratorConfig()
	cfg.Width, cfg.Height = 640, 480
	cfg.BufferKB = 1
	cfg.ClockGHz = 0.9
	r, err := SimulateAccelerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.RealTime {
		t.Error("VGA design must be real-time")
	}
	hd, _ := SimulateAccelerator(DefaultAcceleratorConfig())
	if r.EnergyMJPerFrame >= hd.EnergyMJPerFrame {
		t.Error("VGA energy not below HD")
	}
}

func TestSimulateAcceleratorBadConfig(t *testing.T) {
	cfg := DefaultAcceleratorConfig()
	cfg.K = -5
	if _, err := SimulateAccelerator(cfg); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	if SLIC.String() != "SLIC" || SSLICPPA.String() != "S-SLIC/PPA" || SSLICCPA.String() != "S-SLIC/CPA" {
		t.Fatal("method names")
	}
}

func TestWarmStartAcrossFrames(t *testing.T) {
	img := testImage(64, 48)
	first, err := Segment(img, DefaultOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(12)
	opt.Iterations = 2
	opt.WarmStart = first
	second, err := Segment(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started re-segmentation of the identical frame must agree
	// almost everywhere with the converged first result.
	agree := 0
	bm0 := first.BoundaryMask()
	bm1 := second.BoundaryMask()
	for i := range bm0 {
		if bm0[i] == bm1[i] {
			agree++
		}
	}
	if float64(agree)/float64(len(bm0)) < 0.95 {
		t.Fatalf("warm start diverged: %d/%d boundary agreement", agree, len(bm0))
	}
}

func TestWarmStartRequiresPPA(t *testing.T) {
	img := testImage(32, 32)
	first, err := Segment(img, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(4)
	opt.Method = SLIC
	opt.WarmStart = first
	if _, err := Segment(img, opt); err == nil {
		t.Fatal("warm start with SLIC accepted")
	}
}

func TestWarmStartSizeMismatch(t *testing.T) {
	img := testImage(32, 32)
	first, err := Segment(img, DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(16) // different K → different center grid
	opt.WarmStart = first
	if _, err := Segment(img, opt); err == nil {
		t.Fatal("warm start with mismatched K accepted")
	}
}

func TestSLICOOption(t *testing.T) {
	img := testImage(48, 48)
	opt := DefaultOptions(9)
	opt.Method = SLIC
	opt.AdaptiveCompactness = true
	seg, err := Segment(img, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumSegments < 4 {
		t.Fatalf("SLICO produced %d segments", seg.NumSegments)
	}
	// SLICO with a subsampled method must be rejected.
	opt.Method = SSLICPPA
	if _, err := Segment(img, opt); err == nil {
		t.Fatal("SLICO accepted with PPA method")
	}
}

func TestFromLabels(t *testing.T) {
	labels := make([]int32, 16)
	for i := range labels {
		labels[i] = int32(i % 4)
	}
	seg, err := FromLabels(4, 4, labels)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumSegments != 4 {
		t.Fatalf("segments %d", seg.NumSegments)
	}
	if seg.Label(1, 0) != 1 {
		t.Fatal("label accessor wrong")
	}
	if _, err := FromLabels(4, 4, make([]int32, 15)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	bad := make([]int32, 16)
	bad[3] = -2
	if _, err := FromLabels(4, 4, bad); err == nil {
		t.Fatal("negative label accepted")
	}
}
