package sslic_test

// Runnable godoc examples for the public API. They double as executable
// documentation: `go test` verifies the printed output.

import (
	"fmt"
	"image"
	"image/color"

	"sslic"
)

// quadrants builds a tiny four-color test image.
func quadrants(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var c color.RGBA
			switch {
			case x < w/2 && y < h/2:
				c = color.RGBA{230, 40, 40, 255}
			case x >= w/2 && y < h/2:
				c = color.RGBA{40, 230, 40, 255}
			case x < w/2:
				c = color.RGBA{40, 40, 230, 255}
			default:
				c = color.RGBA{230, 230, 40, 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

// ExampleSegment shows the basic superpixel workflow.
func ExampleSegment() {
	img := quadrants(64, 64)
	seg, err := sslic.Segment(img, sslic.DefaultOptions(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("labels cover %d pixels\n", len(seg.Labels))
	fmt.Printf("every pixel labeled: %v\n", seg.Label(0, 0) >= 0 && seg.Label(63, 63) >= 0)
	// Output:
	// labels cover 4096 pixels
	// every pixel labeled: true
}

// ExampleSegment_methods compares the three algorithms on one image.
func ExampleSegment_methods() {
	img := quadrants(48, 48)
	for _, m := range []sslic.Method{sslic.SSLICPPA, sslic.SSLICCPA, sslic.SLIC} {
		opt := sslic.DefaultOptions(4)
		opt.Method = m
		seg, err := sslic.Segment(img, opt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: %v\n", m, seg.NumSegments == 4)
	}
	// Output:
	// S-SLIC/PPA: true
	// S-SLIC/CPA: true
	// SLIC: true
}

// ExampleEvaluate scores a segmentation against ground truth.
func ExampleEvaluate() {
	img := quadrants(64, 64)
	seg, err := sslic.Segment(img, sslic.DefaultOptions(16))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	gtLabels := make([]int32, 64*64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			var v int32
			if x >= 32 {
				v = 1
			}
			if y >= 32 {
				v += 2
			}
			gtLabels[y*64+x] = v
		}
	}
	gt, err := sslic.NewGroundTruth(64, 64, gtLabels)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m, err := sslic.Evaluate(img, seg, gt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("clean quadrants nest perfectly: %v\n", m.UndersegmentationError < 0.05)
	fmt.Printf("boundaries recovered: %v\n", m.BoundaryRecall > 0.9)
	// Output:
	// clean quadrants nest perfectly: true
	// boundaries recovered: true
}

// ExampleSimulateAccelerator reproduces the paper's headline hardware
// numbers from the calibrated model.
func ExampleSimulateAccelerator() {
	r, err := sslic.SimulateAccelerator(sslic.DefaultAcceleratorConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("real-time at 1080p: %v\n", r.RealTime)
	fmt.Printf("power ≈ 49 mW: %v\n", r.PowerMW > 45 && r.PowerMW < 53)
	fmt.Printf("energy ≈ 1.6 mJ/frame: %v\n", r.EnergyMJPerFrame > 1.5 && r.EnergyMJPerFrame < 1.7)
	// Output:
	// real-time at 1080p: true
	// power ≈ 49 mW: true
	// energy ≈ 1.6 mJ/frame: true
}
