// Command sslic-serve runs the S-SLIC segmentation service: an HTTP
// front end that accepts PPM/PNG frames and returns label maps,
// boundary overlays or mean-color renders, with admission control,
// per-request deadlines, warm-started client streams and graceful
// drain.
//
// Usage:
//
//	sslic-serve -addr :8080
//	sslic-serve -addr :8080 -workers 4 -queue 2 -request-timeout 500ms
//	sslic-serve -addr :8080 -telemetry-addr :9090   # metrics + pprof
//
// Segment a frame:
//
//	curl -s --data-binary @frame.ppm 'localhost:8080/v1/segment?k=900' > labels.bin
//	curl -s --data-binary @frame.png 'localhost:8080/v1/segment?k=400&format=overlay&encoding=png' > overlay.png
//	curl -s --data-binary @frame.ppm 'localhost:8080/v1/segment?stream=cam0' > labels.bin  # warm-starts per stream
//
// Trace a request end to end (with -telemetry-addr :9090):
//
//	curl -s -o /dev/null -H 'X-Trace-Id: debug-1' --data-binary @frame.ppm 'localhost:8080/v1/segment?k=900'
//	curl -s 'localhost:9090/debug/trace?id=debug-1' > trace.json   # load in chrome://tracing or ui.perfetto.dev
//
// The service sheds load instead of queueing it: when every worker and
// queue slot is busy it answers 429 + Retry-After immediately, keeping
// memory bounded under any offered load. SIGINT/SIGTERM triggers a
// drain — health checks flip to 503 so load balancers stop routing
// here, in-flight requests finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sslic/internal/faults"
	"sslic/internal/server"
	"sslic/internal/slo"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
	"sslic/internal/tenant"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "service listen address")
		workers      = flag.Int("workers", 0, "segmentation workers/shards (<=0 uses all CPUs)")
		queue        = flag.Int("queue", 2, "admission queue depth per worker; beyond it requests get 429")
		segWorkers   = flag.Int("seg-workers", 0, "intra-frame parallelism per request (0 keeps results byte-deterministic on the float64 datapath; overridable via ?tile_workers=)")
		datapath     = flag.String("datapath", "float64", "default hot-loop arithmetic: float64 or fixed (the integer LUT datapath; overridable via ?datapath=)")
		k            = flag.Int("k", 900, "default superpixel count (overridable per request via ?k=)")
		ratio        = flag.Float64("ratio", 0.5, "default subsample ratio (?ratio=)")
		iters        = flag.Int("iters", 10, "default full iterations (?iters=)")
		compactness  = flag.Float64("compactness", 10, "default compactness (?compactness=)")
		warmIters    = flag.Int("warm-iters", 3, "iterations for warm-started stream frames")
		maxStreams   = flag.Int("max-streams", 64, "warm-start states kept per worker before evicting the oldest stream")
		maxBody      = flag.Int64("max-body-bytes", 32<<20, "request body limit; beyond it requests get 413")
		maxPixels    = flag.Int("max-pixels", 4<<20, "decoded frame pixel limit; beyond it requests get 413")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "default per-request deadline (tightenable via ?timeout_ms=)")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "upper bound on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "total budget for a graceful drain: listeners close immediately, then in-flight requests and queued work get this long before the process exits anyway")
		faultSpec    = flag.String("faults", "", "fault-injection schedule, e.g. 'sslic.pass:error,prob=0.01;pool.run:latency=20ms,every=50' (default off; see internal/faults)")
		faultSeed    = flag.Int64("faults-seed", 1, "seed for probabilistic fault schedules (deterministic per seed)")
		degradeEvery = flag.Duration("degrade-interval", 250*time.Millisecond, "load-controller sampling interval for adaptive degradation (<0 disables)")
		telAddr      = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/vars, /debug/pprof and /debug/trace on this extra address; empty disables")
		traceBuf     = flag.Int("trace-buffer", 256, "finished traces the flight recorder retains (oldest overwritten)")
		traceSlow    = flag.Duration("trace-slow", 100*time.Millisecond, "requests at or above this latency are always kept in the flight recorder")
		traceRate    = flag.Float64("trace-sample", 0.01, "fraction of ordinary requests kept (errors, slow requests and explicit X-Trace-Id requests are always kept)")
		tenantSpec   = flag.String("tenants", "", "multi-tenant admission spec, e.g. 'acme:class=premium,rate=100,burst=20;free-tier:class=free,rate=5' (empty keeps the single-tenant path; see internal/tenant)")
		sloSpec      = flag.String("slo", "", "SLO objectives, e.g. 'latency,threshold=50ms,budget=0.01;availability,budget=0.001;energy,target_pj=9e9,budget=0.05' (empty disables the engine; see internal/slo)")
		sloBurn      = flag.Float64("slo-burn-threshold", 10, "fast-window burn rate that triggers an automatic profile capture and feeds the degrade ladder (<=0 disables alerting)")
		sloFastWin   = flag.Int("slo-fast-window", 0, "fast burn window in degrade ticks (0 selects 20 — 5s at the default 250ms tick)")
		sloSlowWin   = flag.Int("slo-slow-window", 0, "slow burn window in degrade ticks (0 selects 240 — 60s at the default tick)")
		profCap      = flag.Int("profile-capacity", 8, "profile bundles retained by the burn-triggered capturer")
		profCPUDur   = flag.Duration("profile-cpu-duration", 250*time.Millisecond, "CPU sampling window per profile capture")
		profCooldown = flag.Duration("profile-cooldown", 30*time.Second, "minimum spacing between burn-triggered captures (on-demand captures ignore it)")
		noPool       = flag.Bool("no-buffer-pool", false, "disable the request buffer pool (every request allocates fresh frame and label buffers; for allocation A/B measurements)")
		qMaxChurn    = flag.Float64("quality-max-churn", 0, "inter-frame label churn ratio above which a frame counts as quality-collapsed; collapse pins the degrade ladder at its current level (<=0 disables)")
		qMaxEmpty    = flag.Float64("quality-max-empty", 0, "empty-cluster fraction above which a frame counts as quality-collapsed (<=0 disables)")
		qMaxDecay    = flag.Float64("quality-max-residual-decay", 0, "final/first residual ratio above which a cold frame counts as non-converged (<=0 disables)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	var dp sslic.DatapathKind
	switch *datapath {
	case "float64":
		dp = sslic.Float64
	case "fixed":
		dp = sslic.Fixed
	default:
		fatal(fmt.Errorf("unknown -datapath %q (want float64 or fixed)", *datapath))
	}

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logs := telemetry.NewLogger(telemetry.LoggerConfig{JSON: *logJSON, Level: level})
	mainLog := logs.Component("main")
	reg := telemetry.NewRegistry()

	// Fault injection is always off unless -faults is given; the planted
	// hooks cost one atomic load when disabled.
	if *faultSpec != "" {
		inj, err := faults.NewFromSpec(*faultSeed, *faultSpec)
		if err != nil {
			fatal(err)
		}
		faults.Enable(inj)
		mainLog.Warn("fault injection enabled", "spec", *faultSpec, "seed", *faultSeed)
	}

	// The flight recorder is always on: fixed memory (trace-buffer
	// finished traces), overwrite-oldest, so the last N interesting
	// requests are reconstructable from /debug/trace after the fact.
	recorder := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
		Capacity:      *traceBuf,
		HeadRate:      *traceRate,
		SlowThreshold: *traceSlow,
	}, reg)

	var objectives []slo.Objective
	if *sloSpec != "" {
		objectives, err = slo.ParseObjectives(*sloSpec)
		if err != nil {
			fatal(err)
		}
	}

	var tenants []tenant.Config
	if *tenantSpec != "" {
		tenants, err = tenant.ParseSpec(*tenantSpec)
		if err != nil {
			fatal(err)
		}
		mainLog.Info("multi-tenant admission enabled", "tenants", len(tenants))
	}

	svc, err := server.New(server.Config{
		Workers:                 *workers,
		QueueDepth:              *queue,
		SegWorkers:              *segWorkers,
		Datapath:                dp,
		DefaultK:                *k,
		DefaultRatio:            *ratio,
		DefaultIters:            *iters,
		DefaultCompactness:      *compactness,
		WarmIters:               *warmIters,
		MaxStreams:              *maxStreams,
		MaxBodyBytes:            *maxBody,
		MaxPixels:               *maxPixels,
		RequestTimeout:          *reqTimeout,
		MaxTimeout:              *maxTimeout,
		NoBufferPool:            *noPool,
		DegradeInterval:         *degradeEvery,
		QualityMaxChurn:         *qMaxChurn,
		QualityMaxEmptyFrac:     *qMaxEmpty,
		QualityMaxResidualDecay: *qMaxDecay,
		Registry:                reg,
		Recorder:                recorder,
		Tenants:                 tenants,
		SLOObjectives:           objectives,
		SLOFastWindow:           *sloFastWin,
		SLOSlowWindow:           *sloSlowWin,
		SLOBurnThreshold:        *sloBurn,
		ProfileCapacity:         *profCap,
		ProfileCPUDuration:      *profCPUDur,
		ProfileCooldown:         *profCooldown,
		Logger:                  logs.Component("server"),
	})
	if err != nil {
		fatal(err)
	}

	// The optional telemetry server shares the service registry, so its
	// /metrics carries the request spans, rejection counters and pool
	// gauges alongside pprof — one scrape endpoint for the whole process.
	if *telAddr != "" {
		tel, err := telemetry.NewServer(telemetry.ServerConfig{
			Addr: *telAddr, Registry: reg, Logger: logs, Recorder: recorder,
			SLO:      slo.Handler(svc.SLOEngine()),
			Profiles: telemetry.ProfilesHandler(svc.Profiles()),
			Streams:  svc.StreamsHandler(),
			Tenants:  svc.TenantsHandler(),
		})
		if err != nil {
			fatal(err)
		}
		go tel.Serve()
		defer tel.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /healthz, /debug/vars, /debug/pprof, /debug/trace, /debug/slo, /debug/streams, /debug/tenants, /debug/profiles)\n", tel.Addr())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful drain: on the first signal, stop admitting (healthz flips
	// to 503 for load balancers), let in-flight requests finish within
	// the grace period, then exit. A second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("sslic-serve: listening on %s (POST /v1/segment)\n", *addr)

	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills the process
		mainLog.Info("signal received, draining", "timeout", *drainTimeout)
		deadline := time.Now().Add(*drainTimeout)
		// Stop accepting FIRST: Shutdown closes the listeners
		// immediately (new connections are refused at the socket, which
		// load balancers notice faster than any 503), then waits for
		// in-flight requests, bounded by the drain budget.
		sctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		svc.Drain() // shed anything still arriving on kept-alive connections
		if err := httpSrv.Shutdown(sctx); err != nil {
			mainLog.Warn("shutdown incomplete, in-flight requests abandoned", "err", err)
		}
		// Then drain the segmentation layer within the remaining budget;
		// a pool wedged past the deadline must not stop the exit.
		closed := make(chan struct{})
		go func() { svc.Close(); close(closed) }()
		select {
		case <-closed:
			mainLog.Info("drained, exiting")
		case <-time.After(time.Until(deadline)):
			mainLog.Warn("drain timeout exceeded, exiting with queued work abandoned")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-serve:", err)
	os.Exit(1)
}
