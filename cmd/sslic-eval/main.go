// Command sslic-eval segments an image and evaluates the result against
// a ground-truth label map, completing the dataset → segment → evaluate
// workflow:
//
//	sslic-dataset -n 5 -out corpus
//	sslic-eval -in corpus/image000.ppm -gt corpus/gt000.pgm -k 900
//
// It prints the metric set of the paper's §3 evaluation (USE, boundary
// recall) plus the auxiliary metrics.
package main

import (
	"flag"
	"fmt"
	"os"

	"sslic"
	"sslic/internal/imgio"
)

func main() {
	var (
		in     = flag.String("in", "", "input image (.ppm or .png), required")
		gtPath = flag.String("gt", "", "ground-truth label map (.pgm), required")
		k      = flag.Int("k", 900, "requested superpixel count")
		m      = flag.Float64("m", 10, "compactness")
		iters  = flag.Int("iters", 10, "iterations")
		ratio  = flag.Float64("ratio", 0.5, "S-SLIC subsampling ratio")
		method = flag.String("method", "ppa", "algorithm: ppa, cpa or slic")
		bits   = flag.Int("bits", 0, "fixed-point datapath width (0 = float64)")
		pre    = flag.String("precomputed", "", "evaluate this saved label map (.slbl) instead of segmenting")
	)
	flag.Parse()
	if *in == "" || *gtPath == "" {
		fmt.Fprintln(os.Stderr, "sslic-eval: -in and -gt are required")
		flag.Usage()
		os.Exit(2)
	}

	img, err := imgio.ReadImageFile(*in)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*gtPath)
	if err != nil {
		fatal(err)
	}
	gw, gh, gtBytes, err := imgio.DecodePGM(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if gw != img.W || gh != img.H {
		fatal(fmt.Errorf("ground truth %dx%d does not match image %dx%d", gw, gh, img.W, img.H))
	}
	gtLabels := make([]int32, len(gtBytes))
	for i, v := range gtBytes {
		gtLabels[i] = int32(v)
	}
	gt, err := sslic.NewGroundTruth(gw, gh, gtLabels)
	if err != nil {
		fatal(err)
	}

	if *pre != "" {
		evaluatePrecomputed(img, gt, *pre, *in, *gtPath)
		return
	}

	opt := sslic.Options{
		K:              *k,
		Compactness:    *m,
		Iterations:     *iters,
		SubsampleRatio: *ratio,
		FixedPointBits: *bits,
	}
	switch *method {
	case "ppa":
		opt.Method = sslic.SSLICPPA
	case "cpa":
		opt.Method = sslic.SSLICCPA
	case "slic":
		opt.Method = sslic.SLIC
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	goImg := img.ToGoImage()
	seg, err := sslic.Segment(goImg, opt)
	if err != nil {
		fatal(err)
	}
	metrics, err := sslic.Evaluate(goImg, seg, gt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s vs %s (%s, K=%d → %d superpixels)\n", *in, *gtPath, opt.Method, *k, seg.NumSegments)
	fmt.Printf("  undersegmentation error          %.4f (lower is better)\n", metrics.UndersegmentationError)
	fmt.Printf("  boundary recall (tol 2px)        %.4f (higher is better)\n", metrics.BoundaryRecall)
	fmt.Printf("  achievable segmentation accuracy %.4f\n", metrics.AchievableSegmentationAccuracy)
	fmt.Printf("  explained variation              %.4f\n", metrics.ExplainedVariation)
	fmt.Printf("  compactness                      %.4f\n", metrics.Compactness)
}

// evaluatePrecomputed scores a saved label map against the ground truth.
func evaluatePrecomputed(img *imgio.Image, gt *sslic.GroundTruth, prePath, inPath, gtPath string) {
	lm, err := imgio.ReadLabelMapFile(prePath)
	if err != nil {
		fatal(err)
	}
	if lm.W != img.W || lm.H != img.H {
		fatal(fmt.Errorf("label map %dx%d does not match image %dx%d", lm.W, lm.H, img.W, img.H))
	}
	seg, err := sslic.FromLabels(lm.W, lm.H, lm.Labels)
	if err != nil {
		fatal(err)
	}
	metrics, err := sslic.Evaluate(img.ToGoImage(), seg, gt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (precomputed %s) vs %s: %d superpixels\n", inPath, prePath, gtPath, seg.NumSegments)
	fmt.Printf("  undersegmentation error          %.4f\n", metrics.UndersegmentationError)
	fmt.Printf("  boundary recall (tol 2px)        %.4f\n", metrics.BoundaryRecall)
	fmt.Printf("  achievable segmentation accuracy %.4f\n", metrics.AchievableSegmentationAccuracy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-eval:", err)
	os.Exit(1)
}
