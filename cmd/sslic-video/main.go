// Command sslic-video simulates a frame stream end to end: a synthetic
// moving scene is segmented frame by frame (warm-starting from the
// previous centers), and each frame is scored for quality against exact
// ground truth and for temporal label consistency.
//
// Usage:
//
//	sslic-video -frames 10 -motion pan -speed 3
//	sslic-video -frames 6 -motion shake -cold
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/slic"
	"sslic/internal/sslic"
	"sslic/internal/video"
)

func main() {
	var (
		frames   = flag.Int("frames", 8, "number of frames")
		k        = flag.Int("k", 900, "superpixel count")
		speed    = flag.Int("speed", 3, "motion speed in px/frame")
		motion   = flag.String("motion", "pan", "motion: pan, drift or shake")
		seed     = flag.Int64("seed", 1, "scene seed")
		cold     = flag.Bool("cold", false, "disable warm starting (full iterations every frame)")
		warmIter = flag.Int("warm-iters", 3, "iterations for warm-started frames")
		outDir   = flag.String("out", "", "write per-frame overlays to this directory")
	)
	flag.Parse()

	var m video.Motion
	switch *motion {
	case "pan":
		m = video.Pan
	case "drift":
		m = video.Drift
	case "shake":
		m = video.Shake
	default:
		fatal(fmt.Errorf("unknown motion %q", *motion))
	}

	stream, err := video.NewStream(dataset.DefaultConfig(), *seed, m, *speed)
	if err != nil {
		fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("stream: %s at %d px/frame, K=%d, %d frames\n", m, *speed, *k, *frames)
	fmt.Printf("%5s %5s %9s %8s %8s %12s\n", "frame", "mode", "time", "USE", "BR", "consistency")

	var prevCenters []slic.Center
	var prevLabels *imgio.LabelMap
	var total time.Duration
	for f := 0; f < *frames; f++ {
		img, gt, err := stream.Frame(f)
		if err != nil {
			fatal(err)
		}
		p := sslic.DefaultParams(*k, 0.5)
		mode := "cold"
		if prevCenters != nil && !*cold {
			p.InitialCenters = prevCenters
			p.FullIters = *warmIter
			mode = "warm"
		}
		t0 := time.Now()
		r, err := sslic.Segment(img, p)
		if err != nil {
			fatal(err)
		}
		dt := time.Since(t0)
		total += dt

		use, err := metrics.UndersegmentationError(r.Labels, gt)
		if err != nil {
			fatal(err)
		}
		br, err := metrics.BoundaryRecall(r.Labels, gt, 2)
		if err != nil {
			fatal(err)
		}
		tc := "-"
		if prevLabels != nil {
			dxc, dyc := stream.Displacement(f)
			dxp, dyp := stream.Displacement(f - 1)
			c, err := video.TemporalConsistency(prevLabels, r.Labels, dxc-dxp, dyc-dyp)
			if err != nil {
				fatal(err)
			}
			tc = fmt.Sprintf("%.3f", c)
		}
		fmt.Printf("%5d %5s %9s %8.4f %8.4f %12s\n",
			f, mode, dt.Round(time.Millisecond), use, br, tc)

		if *outDir != "" {
			path := fmt.Sprintf("%s/frame%03d.ppm", *outDir, f)
			if err := imgio.WritePPMFile(path, imgio.Overlay(img, r.Labels, 255, 0, 0)); err != nil {
				fatal(err)
			}
		}
		prevCenters = r.Centers
		prevLabels = r.Labels
	}
	fps := float64(*frames) / total.Seconds()
	fmt.Printf("throughput: %.1f frames/s software on this host (the accelerator model sustains 30 at 1080p)\n", fps)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-video:", err)
	os.Exit(1)
}
