// Command sslic-video simulates a frame stream end to end through the
// concurrent frame pipeline: a synthetic moving scene is rendered,
// segmented by a worker pool (warm-starting from previous centers), and
// each frame is scored for quality against exact ground truth and for
// temporal label consistency. Results are delivered in frame order
// regardless of worker count.
//
// Usage:
//
//	sslic-video -frames 10 -motion pan -speed 3
//	sslic-video -frames 6 -motion shake -cold
//	sslic-video -frames 32 -cold -pipeline-workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/pipeline"
	"sslic/internal/sslic"
	"sslic/internal/video"
)

func main() {
	var (
		frames   = flag.Int("frames", 8, "number of frames")
		k        = flag.Int("k", 900, "superpixel count")
		speed    = flag.Int("speed", 3, "motion speed in px/frame")
		motion   = flag.String("motion", "pan", "motion: pan, drift or shake")
		seed     = flag.Int64("seed", 1, "scene seed")
		cold     = flag.Bool("cold", false, "disable warm starting (full iterations every frame)")
		warmIter = flag.Int("warm-iters", 3, "iterations for warm-started frames")
		outDir   = flag.String("out", "", "write per-frame overlays to this directory")
		workers  = flag.Int("pipeline-workers", 1, "segment-stage worker count (<=0 uses all CPUs); warm streams shard frame f to worker f mod N")
		queue    = flag.Int("queue", 0, "bounded inter-stage queue depth (<=0 selects 2x workers)")
	)
	flag.Parse()

	var m video.Motion
	switch *motion {
	case "pan":
		m = video.Pan
	case "drift":
		m = video.Drift
	case "shake":
		m = video.Shake
	default:
		fatal(fmt.Errorf("unknown motion %q", *motion))
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	stream, err := video.NewStream(dataset.DefaultConfig(), *seed, m, *speed)
	if err != nil {
		fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("stream: %s at %d px/frame, K=%d, %d frames\n", m, *speed, *k, *frames)
	fmt.Printf("%5s %5s %9s %8s %8s %12s\n", "frame", "mode", "time", "USE", "BR", "consistency")

	w, h := stream.Size()
	var pl *pipeline.Pipeline
	var prev *pipeline.Result
	sink := func(r *pipeline.Result) error {
		use, err := metrics.UndersegmentationError(r.Labels, r.GT)
		if err != nil {
			return err
		}
		br, err := metrics.BoundaryRecall(r.Labels, r.GT, 2)
		if err != nil {
			return err
		}
		tc := "-"
		if prev != nil {
			dxc, dyc := stream.Displacement(r.Index)
			dxp, dyp := stream.Displacement(r.Index - 1)
			c, err := video.TemporalConsistency(prev.Labels, r.Labels, dxc-dxp, dyc-dyp)
			if err != nil {
				return err
			}
			tc = fmt.Sprintf("%.3f", c)
		}
		mode := "cold"
		if r.Warm {
			mode = "warm"
		}
		fmt.Printf("%5d %5s %9s %8.4f %8.4f %12s\n",
			r.Index, mode, r.SegLatency.Round(time.Millisecond), use, br, tc)

		if *outDir != "" {
			path := fmt.Sprintf("%s/frame%03d.ppm", *outDir, r.Index)
			if err := imgio.WritePPMFile(path, imgio.Overlay(r.Image, r.Labels, 255, 0, 0)); err != nil {
				return err
			}
		}
		// The previous result was only kept for temporal consistency; its
		// buffers can go back to the pool now.
		pl.Recycle(prev)
		prev = r
		return nil
	}

	pl, err = pipeline.New(pipeline.Config{
		Width: w, Height: h, Frames: *frames,
		Workers: *workers, QueueDepth: *queue,
		Params: sslic.DefaultParams(*k, 0.5),
		Warm:   !*cold, WarmIters: *warmIter,
	}, stream.FrameInto, sink)
	if err != nil {
		fatal(err)
	}

	t0 := time.Now()
	if err := pl.Run(context.Background()); err != nil {
		fatal(err)
	}
	wall := time.Since(t0)

	st := pl.Stats()
	fps := float64(st.Delivered) / wall.Seconds()
	fmt.Printf("throughput: %.1f frames/s software on this host (the accelerator model sustains 30 at 1080p)\n", fps)
	fmt.Printf("pipeline: workers=%d reorder-high-water=%d\n", *workers, st.ReorderHighWater)
	fmt.Printf("  source:  %s\n", st.Source)
	fmt.Printf("  segment: %s\n", st.Segment)
	fmt.Printf("  sink:    %s\n", st.Sink)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-video:", err)
	os.Exit(1)
}
