// Command sslic-video simulates a frame stream end to end through the
// concurrent frame pipeline: a synthetic moving scene is rendered,
// segmented by a worker pool (warm-starting from previous centers), and
// each frame is scored for quality against exact ground truth and for
// temporal label consistency. Results are delivered in frame order
// regardless of worker count.
//
// Usage:
//
//	sslic-video -frames 10 -motion pan -speed 3
//	sslic-video -frames 6 -motion shake -cold
//	sslic-video -frames 32 -cold -pipeline-workers 8
//	sslic-video -frames 120 -telemetry-addr :9090   # curl :9090/metrics
//
// With -telemetry-addr the process serves /metrics (Prometheus),
// /healthz, /debug/vars and /debug/pprof/ while the stream runs: frame
// counters, per-stage latency histograms, and the accelerator model's
// DRAM/energy cost of the same stream, all scrapeable live.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sslic/internal/dataset"
	"sslic/internal/faults"
	"sslic/internal/hw"
	"sslic/internal/imgio"
	"sslic/internal/metrics"
	"sslic/internal/pipeline"
	"sslic/internal/quality"
	"sslic/internal/sslic"
	"sslic/internal/telemetry"
	"sslic/internal/video"
	"sslic/internal/wire"
)

func main() {
	var (
		frames     = flag.Int("frames", 8, "number of frames")
		k          = flag.Int("k", 900, "superpixel count")
		speed      = flag.Int("speed", 3, "motion speed in px/frame")
		motion     = flag.String("motion", "pan", "motion: pan, drift or shake")
		seed       = flag.Int64("seed", 1, "scene seed")
		cold       = flag.Bool("cold", false, "disable warm starting (full iterations every frame)")
		warmIter   = flag.Int("warm-iters", 3, "iterations for warm-started frames")
		outDir     = flag.String("out", "", "write per-frame overlays to this directory")
		labelsFmt  = flag.String("labels-format", "", "also write each frame's label map to -out as frame<N>.<fmt>: slbl, slbl-rle or slbl-delta (delta frames encode against the previous frame's labels)")
		workers    = flag.Int("pipeline-workers", 1, "segment-stage worker count (<=0 uses all CPUs); warm streams shard frame f to worker f mod N")
		tileWork   = flag.Int("tile-workers", 0, "intra-frame row-band parallelism per frame (0/1 serial, -1 all CPUs)")
		datapath   = flag.String("datapath", "float64", "hot-loop arithmetic: float64 or fixed (the integer LUT datapath)")
		queue      = flag.Int("queue", 0, "bounded inter-stage queue depth (<=0 selects 2x workers)")
		telAddr    = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/vars, /debug/pprof and /debug/trace on this address (e.g. :9090); empty disables")
		traceBuf   = flag.Int("trace-buffer", 64, "finished frame traces the flight recorder retains")
		traceAll   = flag.Bool("trace-all", false, "keep every frame trace (default keeps only slow or failed frames)")
		qualityCol = flag.Bool("quality", false, "print the live quality proxies per frame (inter-frame label churn and boundary density — the online stand-ins for the exact USE/BR columns)")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error (debug adds per-frame span traces)")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		faultSpec  = flag.String("faults", "", "fault-injection schedule, e.g. 'pipeline.segment:error,every=5' (default off; see internal/faults)")
		faultSeed  = flag.Int64("faults-seed", 1, "seed for probabilistic fault schedules (deterministic per seed)")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logs := telemetry.NewLogger(telemetry.LoggerConfig{JSON: *logJSON, Level: level})
	reg := telemetry.NewRegistry()

	// Fault injection stays off (and zero-cost) without -faults.
	if *faultSpec != "" {
		inj, err := faults.NewFromSpec(*faultSeed, *faultSpec)
		if err != nil {
			fatal(err)
		}
		faults.Enable(inj)
		logs.Component("main").Warn("fault injection enabled", "spec", *faultSpec, "seed", *faultSeed)
	}

	var m video.Motion
	switch *motion {
	case "pan":
		m = video.Pan
	case "drift":
		m = video.Drift
	case "shake":
		m = video.Shake
	default:
		fatal(fmt.Errorf("unknown motion %q", *motion))
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	stream, err := video.NewStream(dataset.DefaultConfig(), *seed, m, *speed)
	if err != nil {
		fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	var labelsWire wire.Format
	if *labelsFmt != "" {
		var ok bool
		if labelsWire, ok = wire.ParseFormat(*labelsFmt); !ok {
			fatal(fmt.Errorf("unknown -labels-format %q (want slbl, slbl-rle or slbl-delta)", *labelsFmt))
		}
		if *outDir == "" {
			fatal(errors.New("-labels-format requires -out"))
		}
	}

	w, h := stream.Size()
	params := sslic.DefaultParams(*k, 0.5)
	params.Metrics = sslic.NewMetrics(reg)
	params.TileWorkers = *tileWork
	switch *datapath {
	case "float64":
		params.Datapath = sslic.Float64
	case "fixed":
		params.Datapath = sslic.Fixed
	default:
		fatal(fmt.Errorf("unknown -datapath %q (want float64 or fixed)", *datapath))
	}

	// The accelerator model runs alongside the software stream: one
	// analytic simulation per frame mode (cold frames run the full
	// iteration budget, warm frames the reduced one), charged to the
	// hardware metrics as each frame is delivered. A scrape then shows
	// what this exact stream would cost the paper's accelerator in DRAM
	// traffic, scratchpad activity, and energy.
	hwm := hw.NewMetrics(reg)
	hwCfg := hw.DefaultConfig()
	hwCfg.Width, hwCfg.Height, hwCfg.K = w, h, *k
	hwCfg.SubsampleRatio = params.SubsampleRatio
	hwCfg.Passes = params.FullIters * params.Subsets()
	coldReport, err := hw.Simulate(hwCfg)
	if err != nil {
		fatal(err)
	}
	hwCfg.Passes = *warmIter * params.Subsets()
	warmReport, err := hw.Simulate(hwCfg)
	if err != nil {
		fatal(err)
	}

	// Per-frame flight recorder: every pipeline frame carries a trace
	// (queue waits, subset passes, hardware-model charges); the recorder
	// keeps the slow and failed ones — or all of them with -trace-all —
	// browsable at /debug/traces while the stream runs.
	rate := 0.0
	if *traceAll {
		rate = 1.0
	}
	recorder := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
		Capacity: *traceBuf,
		HeadRate: rate,
	}, reg)

	var server *telemetry.Server
	if *telAddr != "" {
		server, err = telemetry.NewServer(telemetry.ServerConfig{
			Addr: *telAddr, Registry: reg, Logger: logs, Recorder: recorder,
		})
		if err != nil {
			fatal(err)
		}
		go server.Serve()
		defer server.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /healthz, /debug/vars, /debug/pprof, /debug/trace)\n", server.Addr())
	}

	fmt.Printf("stream: %s at %d px/frame, K=%d, %d frames\n", m, *speed, *k, *frames)
	if *qualityCol {
		fmt.Printf("%5s %5s %9s %8s %8s %12s %8s %8s\n", "frame", "mode", "time", "USE", "BR", "consistency", "churn", "bdens")
	} else {
		fmt.Printf("%5s %5s %9s %8s %8s %12s\n", "frame", "mode", "time", "USE", "BR", "consistency")
	}

	var pl *pipeline.Pipeline
	var prev *pipeline.Result
	sink := func(r *pipeline.Result) error {
		use, err := metrics.UndersegmentationError(r.Labels, r.GT)
		if err != nil {
			return err
		}
		br, err := metrics.BoundaryRecall(r.Labels, r.GT, 2)
		if err != nil {
			return err
		}
		tc := "-"
		if prev != nil {
			dxc, dyc := stream.Displacement(r.Index)
			dxp, dyp := stream.Displacement(r.Index - 1)
			c, err := video.TemporalConsistency(prev.Labels, r.Labels, dxc-dxp, dyc-dyp)
			if err != nil {
				return err
			}
			tc = fmt.Sprintf("%.3f", c)
		}
		// Charge the accelerator model's cost of this exact frame onto its
		// trace timeline (dram_charge / scratchpad_charge instants) as
		// well as the aggregate counters.
		tctx := telemetry.WithTrace(context.Background(), r.Trace)
		mode := "cold"
		if r.Warm {
			mode = "warm"
			hwm.ObserveReportCtx(tctx, warmReport)
		} else {
			hwm.ObserveReportCtx(tctx, coldReport)
		}
		if *qualityCol {
			// The online proxies, next to the exact offline metrics they
			// stand in for: churn (vs the previous frame's labels, like
			// the serving layer's delta-base compare) and boundary
			// density (the live BR proxy).
			churn := "-"
			if prev != nil {
				if changed, ok := quality.LabelChurn(r.Labels, prev.Labels); ok {
					churn = fmt.Sprintf("%.4f", float64(changed)/float64(w*h))
				}
			}
			fmt.Printf("%5d %5s %9s %8.4f %8.4f %12s %8s %8.4f\n",
				r.Index, mode, r.SegLatency.Round(time.Millisecond), use, br, tc,
				churn, quality.BoundaryDensity(r.Labels))
		} else {
			fmt.Printf("%5d %5s %9s %8.4f %8.4f %12s\n",
				r.Index, mode, r.SegLatency.Round(time.Millisecond), use, br, tc)
		}

		if *outDir != "" {
			path := fmt.Sprintf("%s/frame%03d.ppm", *outDir, r.Index)
			if err := imgio.WritePPMFile(path, imgio.Overlay(r.Image, r.Labels, 255, 0, 0)); err != nil {
				return err
			}
			if *labelsFmt != "" {
				// Deltas encode against the previous frame exactly like
				// the serving layer's per-stream base: consecutive frames
				// share most labels, so a static scene approaches zero
				// bytes per frame.
				var base *imgio.LabelMap
				if labelsWire == wire.Delta && prev != nil {
					base = prev.Labels
				}
				if err := writeWireLabels(
					fmt.Sprintf("%s/frame%03d.%s", *outDir, r.Index, *labelsFmt),
					labelsWire, r.Labels, base); err != nil {
					return err
				}
			}
		}
		// The previous result was only kept for temporal consistency; its
		// buffers can go back to the pool now.
		pl.Recycle(prev)
		prev = r
		return nil
	}

	pl, err = pipeline.New(pipeline.Config{
		Width: w, Height: h, Frames: *frames,
		Workers: *workers, QueueDepth: *queue,
		Params: params,
		Warm:   !*cold, WarmIters: *warmIter,
		Registry: reg, Recorder: recorder,
		Logger: logs.Component("pipeline"),
	}, stream.FrameInto, sink)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancels the stream context: the pipeline drains
	// (in-flight frames abort between subset passes, queued frames are
	// dropped) and the stats below still report what was delivered. A
	// second signal kills the process the default way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	t0 := time.Now()
	if err := pl.Run(ctx); err != nil {
		if !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		fmt.Println("interrupted: stream drained early")
	}
	wall := time.Since(t0)

	st := pl.Stats()
	fps := float64(st.Delivered) / wall.Seconds()
	fmt.Printf("throughput: %.1f frames/s software on this host (the accelerator model sustains 30 at 1080p)\n", fps)
	fmt.Printf("pipeline: workers=%d reorder-high-water=%d\n", *workers, st.ReorderHighWater)
	fmt.Printf("  source:  %s\n", st.Source)
	fmt.Printf("  segment: %s\n", st.Segment)
	fmt.Printf("  sink:    %s\n", st.Sink)
}

// writeWireLabels writes one frame's label map in the given wire
// framing (base is non-nil only for delta frames after the first).
func writeWireLabels(path string, f wire.Format, labels, base *imgio.LabelMap) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wire.Encode(out, f, labels, base); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-video:", err)
	os.Exit(1)
}
