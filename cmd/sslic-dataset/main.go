// Command sslic-dataset generates the synthetic benchmark corpus that
// substitutes for the Berkeley segmentation dataset (see DESIGN.md).
// Each sample is written as imageNNN.ppm plus gtNNN.pgm (the exact
// ground-truth label map, one region index per pixel) and an optional
// boundary preview.
//
// Usage:
//
//	sslic-dataset -n 20 -out corpus/
//	sslic-dataset -n 5 -kind blobs -seed 7 -preview -out /tmp/blobs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sslic/internal/dataset"
	"sslic/internal/imgio"
)

func main() {
	var (
		n       = flag.Int("n", 20, "number of images")
		seed    = flag.Int64("seed", 1, "corpus seed")
		kind    = flag.String("kind", "voronoi", "scene kind: voronoi, blobs or stripes")
		regions = flag.Int("regions", 0, "ground-truth regions per image (0 = default)")
		w       = flag.Int("w", 0, "image width (0 = BSDS 481)")
		h       = flag.Int("h", 0, "image height (0 = BSDS 321)")
		out     = flag.String("out", "corpus", "output directory")
		preview = flag.Bool("preview", false, "also write ground-truth boundary overlays")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	switch *kind {
	case "voronoi":
		cfg.Kind = dataset.Voronoi
	case "blobs":
		cfg.Kind = dataset.Blobs
	case "stripes":
		cfg.Kind = dataset.Stripes
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if *regions > 0 {
		cfg.Regions = *regions
	}
	if *w > 0 {
		cfg.W = *w
	}
	if *h > 0 {
		cfg.H = *h
	}
	if cfg.Regions > 255 {
		fatal(fmt.Errorf("at most 255 regions supported by the PGM ground-truth encoding"))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	manifest := dataset.NewManifest(cfg, *n, *seed)
	if err := manifest.WriteFile(filepath.Join(*out, "manifest.json")); err != nil {
		fatal(err)
	}
	samples, err := dataset.Corpus(cfg, *n, *seed)
	if err != nil {
		fatal(err)
	}
	for i, s := range samples {
		imgPath := filepath.Join(*out, fmt.Sprintf("image%03d.ppm", i))
		if err := imgio.WritePPMFile(imgPath, s.Image); err != nil {
			fatal(err)
		}
		gt := make([]uint8, len(s.GT.Labels))
		for j, v := range s.GT.Labels {
			gt[j] = uint8(v)
		}
		gtPath := filepath.Join(*out, fmt.Sprintf("gt%03d.pgm", i))
		f, err := os.Create(gtPath)
		if err != nil {
			fatal(err)
		}
		if err := imgio.EncodePGM(f, s.GT.W, s.GT.H, gt); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if *preview {
			ov := imgio.Overlay(s.Image, s.GT, 255, 0, 0)
			if err := imgio.WritePPMFile(filepath.Join(*out, fmt.Sprintf("preview%03d.ppm", i)), ov); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("wrote %d %s samples (seed %d) to %s\n", *n, *kind, *seed, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-dataset:", err)
	os.Exit(1)
}
