// Command sslic-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	sslic-bench                   # run everything at paper scale
//	sslic-bench -exp table3       # one experiment
//	sslic-bench -quick            # trimmed sweeps for a fast smoke run
//	sslic-bench -csv -out results # also write CSV files per experiment
//
// Benchmark trajectory (machine-comparable perf reports):
//
//	sslic-bench -json benchdata/          # writes benchdata/BENCH_<stamp>.json
//	sslic-bench -json out.json -quick     # CI-speed run to an explicit path
//	sslic-benchdiff base.json out.json    # fails on >10% regressions
//
// With -json the process runs the perf harness (testing.Benchmark over
// the PPA/CPA × subsample-ratio matrix) instead of the paper tables and
// writes frames/sec, ns/op, allocs/op and distance-calcs/frame per
// configuration. Passing a directory derives a BENCH_<UTC stamp>.json
// name inside it, growing the committed trajectory one file per run.
//
// With -telemetry-addr the process serves /metrics, /healthz,
// /debug/vars and /debug/pprof/ while experiments run, so long paper
// sweeps can be watched and CPU-profiled in flight.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sslic/internal/bench"
	"sslic/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (empty = all); use -list to enumerate")
		list    = flag.Bool("list", false, "list experiments and exit")
		corpus  = flag.Int("corpus", 20, "corpus size for quality experiments")
		seed    = flag.Int64("seed", 1, "corpus seed")
		quick   = flag.Bool("quick", false, "trimmed sweeps")
		csv     = flag.Bool("csv", false, "write CSV files per experiment")
		md      = flag.Bool("md", false, "write Markdown files per experiment")
		out     = flag.String("out", ".", "directory for CSV/Markdown output")
		jsonOut = flag.String("json", "", "run the perf harness and write its JSON report here (a directory derives BENCH_<stamp>.json); empty runs the paper experiments instead")
		speedy  = flag.String("speedups", "", "print the speedup table of an existing perf report as Markdown rows and exit")
		telAddr = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address while experiments run; empty disables")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", r.ID, r.Description)
		}
		return
	}

	if *speedy != "" {
		if err := printSpeedups(*speedy); err != nil {
			fmt.Fprintln(os.Stderr, "sslic-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := runPerf(*jsonOut, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "sslic-bench:", err)
			os.Exit(1)
		}
		return
	}

	reg := telemetry.NewRegistry()
	expRuns := reg.Counter("sslic_bench_experiments_total",
		"Experiments completed by this sslic-bench process.")
	expSeconds := reg.Histogram("sslic_bench_experiment_seconds",
		"Wall time per experiment.",
		[]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300})
	if *telAddr != "" {
		server, err := telemetry.NewServer(telemetry.ServerConfig{Addr: *telAddr, Registry: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sslic-bench:", err)
			os.Exit(1)
		}
		go server.Serve()
		defer server.Close()
		fmt.Printf("telemetry: http://%s/metrics (also /healthz, /debug/vars, /debug/pprof)\n\n", server.Addr())
	}

	opts := bench.Options{CorpusSize: *corpus, Seed: *seed, Quick: *quick}

	var runners []bench.Runner
	if *exp == "" {
		runners = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "sslic-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		t0 := time.Now()
		tbl, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sslic-bench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		expRuns.Inc()
		expSeconds.Observe(time.Since(t0).Seconds())
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
		if *csv || *md {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "sslic-bench:", err)
				os.Exit(1)
			}
		}
		if *csv {
			path := filepath.Join(*out, r.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sslic-bench:", err)
				os.Exit(1)
			}
		}
		if *md {
			path := filepath.Join(*out, r.ID+".md")
			if err := os.WriteFile(path, []byte(tbl.Markdown()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sslic-bench:", err)
				os.Exit(1)
			}
		}
	}
}

// runPerf measures the perf matrix and writes the stamped JSON report —
// one point on the benchmark trajectory.
func runPerf(dest string, quick bool) error {
	rep, err := bench.RunPerf(quick)
	if err != nil {
		return err
	}
	now := time.Now().UTC()
	rep.Stamp = now.Format(time.RFC3339)
	if st, err := os.Stat(dest); err == nil && st.IsDir() {
		dest = filepath.Join(dest, "BENCH_"+now.Format("20060102T150405Z")+".json")
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := bench.WritePerf(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-10s %12d ns/op %10.2f frames/s %8d allocs/op %12d dist-calcs/frame",
			r.Name, r.NsPerOp, r.FramesPerSec, r.AllocsPerOp, r.DistanceCalcsPerFrame)
		if r.Cost != nil && r.Cost.EstPJ > 0 {
			fmt.Printf(" %12.3g pJ/frame", r.Cost.EstPJ)
		}
		fmt.Println()
	}
	fmt.Printf("perf report: %s\n", dest)
	return nil
}

// printSpeedups renders a report's derived speedup ratios as Markdown
// table rows (sorted by name), for the CI speedup-table artifact.
func printSpeedups(path string) error {
	rep, err := bench.LoadPerf(path)
	if err != nil {
		return err
	}
	if len(rep.Speedups) == 0 {
		return fmt.Errorf("%s carries no speedups (report predates them?)", path)
	}
	names := make([]string, 0, len(rep.Speedups))
	for n := range rep.Speedups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("| %s | %.2fx |\n", n, rep.Speedups[n])
	}
	return nil
}
