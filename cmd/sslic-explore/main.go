// Command sslic-explore runs the accelerator design-space exploration of
// §6 interactively: sweep the Cluster Update Unit parallelism, the
// channel buffer size, the core count, the resolution or the datapath
// bit width, and print the resulting design points.
//
// Usage:
//
//	sslic-explore -sweep cluster
//	sslic-explore -sweep buffer -w 1280 -h 720
//	sslic-explore -sweep cores -buffer 8
//	sslic-explore -sweep bitwidth -corpus 4
package main

import (
	"flag"
	"fmt"
	"os"

	"sslic/internal/bench"
	"sslic/internal/energy"
	"sslic/internal/hdl"
	"sslic/internal/hw"
)

func main() {
	var (
		sweep  = flag.String("sweep", "cluster", "what to sweep: cluster, buffer, cores, resolution or bitwidth")
		w      = flag.Int("w", 1920, "image width")
		h      = flag.Int("h", 1080, "image height")
		k      = flag.Int("k", 5000, "superpixel count")
		buffer = flag.Int("buffer", 4, "channel buffer size in kB")
		passes = flag.Int("passes", 9, "cluster update passes")
		corpus = flag.Int("corpus", 4, "corpus size (bitwidth sweep only)")
		rtl    = flag.String("rtl", "", "emit Verilog for a cluster configuration (e.g. 9-9-6) and exit")
		rtlOut = flag.String("rtl-out", "", "write the generated RTL here instead of stdout")
	)
	flag.Parse()

	if *rtl != "" {
		emitRTL(*rtl, *rtlOut)
		return
	}

	base := hw.DefaultConfig()
	base.Width, base.Height, base.K = *w, *h, *k
	base.BufferBytesPerChannel = *buffer * 1024
	base.Passes = *passes

	switch *sweep {
	case "cluster":
		sweepCluster(base)
	case "buffer":
		sweepBuffer(base)
	case "cores":
		sweepCores(base)
	case "resolution":
		sweepResolution(base)
	case "bitwidth":
		r, ok := bench.Lookup("bitwidth")
		if !ok {
			fatal(fmt.Errorf("bitwidth experiment missing"))
		}
		tbl, err := r.Run(bench.Options{CorpusSize: *corpus, Seed: 1})
		if err != nil {
			fatal(err)
		}
		fmt.Print(tbl.Render())
	default:
		fatal(fmt.Errorf("unknown sweep %q", *sweep))
	}
}

func header() {
	fmt.Printf("%-22s %10s %9s %9s %8s %10s %9s\n",
		"design point", "area(mm²)", "power(mW)", "lat(ms)", "fps", "mJ/frame", "fps/mm²")
}

func row(name string, r *hw.Report) {
	rt := " "
	if r.RealTime {
		rt = "*"
	}
	fmt.Printf("%-22s %10.4f %9.1f %9.2f %7.1f%s %10.2f %9.0f\n",
		name, r.AreaMM2, r.PowerWatts*1e3, r.TotalTime*1e3, r.FPS, rt,
		r.EnergyPerFrame*1e3, r.PerfPerArea)
}

func sweepCluster(base hw.Config) {
	tech := energy.Default16nm()
	fmt.Println("Cluster Update Unit sweep (unit-level, Table 3):")
	fmt.Printf("%-8s %10s %9s %8s %10s %9s %11s\n",
		"config", "area(mm²)", "power(mW)", "lat(cyc)", "tput", "time(ms)", "energy(µJ)")
	n := base.Width * base.Height
	for _, c := range hw.Table3Configs() {
		fmt.Printf("%-8s %10.4f %9.1f %8d %10s %9.1f %11.1f\n",
			c.String(), c.AreaMM2(), c.PowerWatts(tech)*1e3, c.LatencyCycles(),
			fmt.Sprintf("1/%d px/cyc", c.InitiationInterval()),
			c.IterationTime(tech, n)*1e3, c.IterationEnergy(tech, n)*1e6)
	}
	fmt.Println("\nSystem-level impact:")
	header()
	for _, c := range hw.Table3Configs() {
		cfg := base
		cfg.Cluster = c
		r, err := hw.Simulate(cfg)
		if err != nil {
			fatal(err)
		}
		row(c.String(), r)
	}
}

func sweepBuffer(base hw.Config) {
	fmt.Printf("Channel buffer sweep at %dx%d (Fig 6):\n", base.Width, base.Height)
	header()
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := base
		cfg.BufferBytesPerChannel = kb * 1024
		r, err := hw.Simulate(cfg)
		if err != nil {
			fatal(err)
		}
		row(fmt.Sprintf("%dkB/channel", kb), r)
	}
}

func sweepCores(base hw.Config) {
	fmt.Printf("Core count sweep at %dx%d:\n", base.Width, base.Height)
	header()
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Cores = cores
		r, err := hw.Simulate(cfg)
		if err != nil {
			fatal(err)
		}
		row(fmt.Sprintf("%d core(s)", cores), r)
	}
}

func sweepResolution(base hw.Config) {
	fmt.Println("Resolution sweep (Table 4 design points):")
	header()
	for _, res := range []struct {
		name    string
		w, h    int
		buf     int
		clockHz float64
	}{
		{"1920x1080@1.6GHz", 1920, 1080, 4096, 1.6e9},
		{"1280x768@1.25GHz", 1280, 768, 1024, 1.25e9},
		{"640x480@0.9GHz", 640, 480, 1024, 0.9e9},
	} {
		cfg := base
		cfg.Width, cfg.Height = res.w, res.h
		cfg.BufferBytesPerChannel = res.buf
		cfg.Tech.ClockHz = res.clockHz
		r, err := hw.Simulate(cfg)
		if err != nil {
			fatal(err)
		}
		row(res.name, r)
	}
}

// emitRTL generates the Cluster Update Unit Verilog for a w-w-w
// configuration string.
func emitRTL(spec, out string) {
	var d, m, a int
	if _, err := fmt.Sscanf(spec, "%d-%d-%d", &d, &m, &a); err != nil {
		fatal(fmt.Errorf("bad -rtl %q, want e.g. 9-9-6", spec))
	}
	src, err := hdl.Emit(hw.ClusterConfig{DistWays: d, MinWays: m, AdderWays: a}, hdl.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	if out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(src))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-explore:", err)
	os.Exit(1)
}
