// Command sslic-benchdiff compares two perf reports written by
// sslic-bench -json and fails (exit 1) when any metric regressed beyond
// the tolerance, so a perf regression is a red CI run instead of a
// number nobody reread.
//
// Usage:
//
//	sslic-benchdiff base.json current.json
//	sslic-benchdiff -tolerance 0.05 base.json current.json
//	sslic-benchdiff -skip-time base.json current.json   # CI mode
//
// Every compared metric is lower-is-better; a config regresses when
// current/base exceeds 1+tolerance. Configs present in the baseline but
// missing from the current report also fail the diff — silently dropped
// coverage is itself a regression. -skip-time ignores the wall-time
// metrics (ns/op, frames/s) and gates only on the deterministic ones
// (allocs/op, bytes/op, distance-calcs/frame), which is the mode CI
// uses: those do not vary with the runner's CPU.
package main

import (
	"flag"
	"fmt"
	"os"

	"sslic/internal/bench"
)

func main() {
	var (
		tolerance = flag.Float64("tolerance", 0.10, "maximum allowed current/base increase per metric (0.10 = 10%)")
		skipTime  = flag.Bool("skip-time", false, "ignore wall-time metrics (ns/op, frames/s); gate only on deterministic ones")
		verbose   = flag.Bool("v", false, "print every metric delta, not just regressions")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: sslic-benchdiff [-tolerance 0.10] [-skip-time] base.json current.json")
		os.Exit(2)
	}
	base, err := bench.LoadPerf(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := bench.LoadPerf(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	all, regressions, missing, err := bench.ComparePerf(base, cur, *tolerance, *skipTime)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, d := range all {
			fmt.Println(" ", d)
		}
	}
	for _, name := range missing {
		fmt.Printf("MISSING %s: in baseline but not in current report\n", name)
	}
	for _, d := range regressions {
		fmt.Printf("REGRESSION %s (tolerance %.0f%%)\n", d, *tolerance*100)
	}
	if len(missing) > 0 || len(regressions) > 0 {
		os.Exit(1)
	}
	fmt.Printf("ok: %d metrics within %.0f%% of baseline (%s -> %s)\n",
		len(all), *tolerance*100, flag.Arg(0), flag.Arg(1))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-benchdiff:", err)
	os.Exit(1)
}
