// Command sslic segments an image into superpixels with SLIC or S-SLIC
// and writes boundary-overlay, mean-color and label visualizations.
//
// Usage:
//
//	sslic -in photo.png -k 900 -overlay out.png
//	sslic -in frame.ppm -method slic -iters 10 -mean abstract.ppm
package main

import (
	"flag"
	"fmt"
	"image/color"
	"os"
	"time"

	"sslic"
	"sslic/internal/imgio"
)

func main() {
	var (
		in      = flag.String("in", "", "input image (.ppm or .png), required")
		k       = flag.Int("k", 900, "requested superpixel count")
		m       = flag.Float64("m", 10, "compactness (Equation 5's m, 1-40)")
		iters   = flag.Int("iters", 10, "full-image-equivalent iterations")
		ratio   = flag.Float64("ratio", 0.5, "S-SLIC subsampling ratio (1 = no subsampling)")
		method  = flag.String("method", "ppa", "algorithm: ppa, cpa or slic")
		bits    = flag.Int("bits", 0, "fixed-point datapath width (0 = float64, paper uses 8)")
		slico   = flag.Bool("slico", false, "adaptive compactness (SLICO; method slic only)")
		overlay = flag.String("overlay", "", "write boundary overlay image here")
		mean    = flag.String("mean", "", "write mean-color abstraction here")
		labels  = flag.String("labels", "", "write colorized label image here")
		save    = flag.String("save-labels", "", "write the raw label map here (.slbl, for sslic-eval -precomputed)")
		quiet   = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "sslic: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	img, err := imgio.ReadImageFile(*in)
	if err != nil {
		fatal(err)
	}

	opt := sslic.Options{
		K:                   *k,
		Compactness:         *m,
		Iterations:          *iters,
		SubsampleRatio:      *ratio,
		FixedPointBits:      *bits,
		AdaptiveCompactness: *slico,
	}
	switch *method {
	case "ppa":
		opt.Method = sslic.SSLICPPA
	case "cpa":
		opt.Method = sslic.SSLICCPA
	case "slic":
		opt.Method = sslic.SLIC
	default:
		fatal(fmt.Errorf("unknown method %q (want ppa, cpa or slic)", *method))
	}

	goImg := img.ToGoImage()
	t0 := time.Now()
	seg, err := sslic.Segment(goImg, opt)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)

	if *overlay != "" {
		out := seg.Overlay(goImg, color.RGBA{R: 255, A: 255})
		if err := imgio.WriteImageFile(*overlay, imgio.FromGoImage(out)); err != nil {
			fatal(err)
		}
	}
	if *mean != "" {
		out := seg.MeanColor(goImg)
		if err := imgio.WriteImageFile(*mean, imgio.FromGoImage(out)); err != nil {
			fatal(err)
		}
	}
	if *labels != "" {
		out := seg.ColorizeLabels()
		if err := imgio.WriteImageFile(*labels, imgio.FromGoImage(out)); err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		lm := imgio.NewLabelMap(seg.W, seg.H)
		copy(lm.Labels, seg.Labels)
		if err := imgio.WriteLabelMapFile(*save, lm); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Printf("%s: %dx%d, %d superpixels (%s, K=%d, m=%g, ratio=%g) in %v\n",
			*in, seg.W, seg.H, seg.NumSegments, opt.Method, *k, *m, *ratio, elapsed.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic:", err)
	os.Exit(1)
}
