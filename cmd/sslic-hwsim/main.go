// Command sslic-hwsim runs the bit-accurate functional simulation of the
// S-SLIC accelerator on a real image: the pixels go through the modeled
// LUT color conversion, integer cluster-update datapath and serial
// divider, producing the label map the silicon would produce alongside
// the cycle, traffic and operation counters.
//
// Usage:
//
//	sslic-hwsim -in frame.ppm -k 900 -overlay hw_overlay.ppm
//	sslic-hwsim -in frame.ppm -buffer 4 -passes 9 -ratio 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"sslic/internal/hw"
	"sslic/internal/imgio"
)

func main() {
	var (
		in      = flag.String("in", "", "input image (.ppm or .png), required")
		k       = flag.Int("k", 900, "superpixel count")
		buffer  = flag.Int("buffer", 4, "channel buffer size in kB")
		passes  = flag.Int("passes", 9, "cluster update passes")
		ratio   = flag.Float64("ratio", 1, "subsampling ratio")
		overlay = flag.String("overlay", "", "write the hardware label boundary overlay here")
		labels  = flag.String("labels", "", "write the colorized hardware label map here")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "sslic-hwsim: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	im, err := imgio.ReadImageFile(*in)
	if err != nil {
		fatal(err)
	}

	cfg := hw.DefaultConfig()
	cfg.Width, cfg.Height, cfg.K = im.W, im.H, *k
	cfg.BufferBytesPerChannel = *buffer * 1024
	cfg.Passes = *passes
	cfg.SubsampleRatio = *ratio

	fs, err := hw.NewFuncSim(cfg)
	if err != nil {
		fatal(err)
	}
	lm, err := fs.Run(im)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("functional simulation of %s (%dx%d, K=%d, %s cluster unit)\n",
		*in, im.W, im.H, *k, cfg.Cluster)
	fmt.Printf("  superpixels      %d\n", lm.NumRegions())
	fmt.Printf("  cycles           %d (%.2f ms at %.1f GHz)\n",
		fs.Cycles, fs.TimeSeconds()*1e3, cfg.Tech.ClockHz/1e9)
	fmt.Printf("  distance calcs   %d\n", fs.DistanceCalcs)
	fmt.Printf("  divider ops      %d\n", fs.DividerOps)
	fmt.Printf("  DRAM traffic     %.2f MB\n", float64(fs.DRAMBytes)/1e6)
	fmt.Printf("  scratchpad R/W   %d / %d\n", fs.ScratchReads, fs.ScratchWrites)

	if *overlay != "" {
		out := imgio.Overlay(im, lm, 255, 0, 0)
		if err := imgio.WriteImageFile(*overlay, out); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *overlay)
	}
	if *labels != "" {
		if err := imgio.WriteImageFile(*labels, imgio.LabelColors(lm)); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *labels)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sslic-hwsim:", err)
	os.Exit(1)
}
