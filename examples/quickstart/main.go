// Quickstart: generate a synthetic test scene, segment it into
// superpixels with S-SLIC, and write the three standard visualizations
// (boundary overlay, mean-color abstraction, colorized labels).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"image/color"
	"log"

	"sslic"
	"sslic/internal/dataset"
	"sslic/internal/imgio"
)

func main() {
	// A Berkeley-like synthetic scene with known ground truth.
	sample, err := dataset.Generate(dataset.DefaultConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	img := sample.Image.ToGoImage()

	// Segment with the paper's default configuration: S-SLIC(0.5) on the
	// pixel perspective architecture, m=10, 10 iterations.
	seg, err := sslic.Segment(img, sslic.DefaultOptions(900))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented %dx%d into %d superpixels (%d distance calcs, %d iterations)\n",
		seg.W, seg.H, seg.NumSegments, seg.DistanceCalcs, seg.Iterations)

	// How well did we do against the exact ground truth?
	gt, err := sslic.NewGroundTruth(sample.GT.W, sample.GT.H, sample.GT.Labels)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sslic.Evaluate(img, seg, gt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undersegmentation error %.4f, boundary recall %.4f, ASA %.4f\n",
		m.UndersegmentationError, m.BoundaryRecall, m.AchievableSegmentationAccuracy)

	// Write the visualizations.
	outputs := map[string]func() *imgio.Image{
		"quickstart_input.ppm":   func() *imgio.Image { return sample.Image },
		"quickstart_overlay.ppm": func() *imgio.Image { return imgio.FromGoImage(seg.Overlay(img, color.RGBA{R: 255, A: 255})) },
		"quickstart_mean.ppm":    func() *imgio.Image { return imgio.FromGoImage(seg.MeanColor(img)) },
		"quickstart_labels.ppm":  func() *imgio.Image { return imgio.FromGoImage(seg.ColorizeLabels()) },
	}
	for name, render := range outputs {
		if err := imgio.WritePPMFile(name, render()); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
