// Mobile-vision pipeline: the use case from the paper's introduction —
// superpixels as a preprocessing stage that "reduces the complexity of
// image processing tasks later in the computer vision pipeline".
//
// The example segments a scene, extracts per-region features, builds the
// weighted region adjacency graph and merges superpixels into object
// proposals with the adaptive (Felzenszwalb-style) criterion — all on
// ~900 graph nodes instead of ~154k pixels.
//
//	go run ./examples/mobilevision
package main

import (
	"fmt"
	"log"

	"sslic"
	"sslic/internal/dataset"
	"sslic/internal/imgio"
	"sslic/internal/vision"
)

func main() {
	sample, err := dataset.Generate(dataset.DefaultConfig(), 7)
	if err != nil {
		log.Fatal(err)
	}
	img := sample.Image.ToGoImage()

	seg, err := sslic.Segment(img, sslic.DefaultOptions(900))
	if err != nil {
		log.Fatal(err)
	}
	n := seg.W * seg.H
	fmt.Printf("pixels: %d → superpixels: %d (%.0f× data reduction for downstream stages)\n",
		n, seg.NumSegments, float64(n)/float64(seg.NumSegments))

	// Downstream stage on the superpixel graph.
	im := imgio.FromGoImage(img)
	lm := imgio.NewLabelMap(seg.W, seg.H)
	copy(lm.Labels, seg.Labels)

	feats, err := vision.ExtractFeatures(im, lm)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := vision.BuildGraph(feats, lm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region adjacency graph: %d nodes, %d edges\n", graph.NumRegions, len(graph.Edges))

	merged, err := vision.GreedyMerge(graph, feats, vision.MergeParams{AdaptiveK: 5000})
	if err != nil {
		log.Fatal(err)
	}
	proposals, err := vision.ApplyMerge(lm, merged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive merging: %d merges → %d object proposals\n",
		merged.MergesApplied, merged.Num)

	// How good was the superpixel stage against ground truth?
	gt, err := sslic.NewGroundTruth(sample.GT.W, sample.GT.H, sample.GT.Labels)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sslic.Evaluate(img, seg, gt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("superpixel quality: USE %.4f, boundary recall %.4f\n",
		m.UndersegmentationError, m.BoundaryRecall)

	// The biggest proposals, with their features.
	sizes := proposals.RegionSizes()
	var biggest int32
	for lbl, sz := range sizes {
		if sz > sizes[biggest] {
			biggest = lbl
		}
	}
	pFeats, err := vision.ExtractFeatures(im, proposals)
	if err != nil {
		log.Fatal(err)
	}
	f := pFeats[biggest]
	fmt.Printf("largest proposal: %d px, mean color (%.0f,%.0f,%.0f), bbox [%d,%d]-[%d,%d]\n",
		f.Area, f.MeanColor[0], f.MeanColor[1], f.MeanColor[2], f.MinX, f.MinY, f.MaxX, f.MaxY)

	if err := imgio.WritePPMFile("mobilevision_proposals.ppm", imgio.LabelColors(proposals)); err != nil {
		log.Fatal(err)
	}
	if err := imgio.WritePPMFile("mobilevision_abstract.ppm", imgio.MeanColor(im, proposals)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mobilevision_proposals.ppm, mobilevision_abstract.ppm")
}
