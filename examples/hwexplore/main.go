// Hardware exploration through the public API: search the accelerator
// design space for the cheapest configuration that sustains 30 fps at
// each resolution — the §6 exercise, automated.
//
//	go run ./examples/hwexplore
package main

import (
	"fmt"
	"log"

	"sslic"
)

func main() {
	resolutions := []struct {
		name string
		w, h int
	}{
		{"1920x1080", 1920, 1080},
		{"1280x768", 1280, 768},
		{"640x480", 640, 480},
	}
	buffers := []int{1, 2, 4, 8, 16, 32}
	clocks := []float64{0.8, 0.9, 1.0, 1.25, 1.6}

	fmt.Println("cheapest real-time design per resolution (K=5000, 9 passes):")
	for _, res := range resolutions {
		best := struct {
			report *sslic.AcceleratorReport
			bufKB  int
			ghz    float64
		}{}
		for _, buf := range buffers {
			for _, ghz := range clocks {
				cfg := sslic.AcceleratorConfig{
					Width: res.w, Height: res.h,
					BufferKB: buf,
					ClockGHz: ghz,
				}
				r, err := sslic.SimulateAccelerator(cfg)
				if err != nil {
					log.Fatal(err)
				}
				if !r.RealTime {
					continue
				}
				// Cheapest = lowest energy per frame; ties by area.
				if best.report == nil ||
					r.EnergyMJPerFrame < best.report.EnergyMJPerFrame ||
					(r.EnergyMJPerFrame == best.report.EnergyMJPerFrame && r.AreaMM2 < best.report.AreaMM2) {
					best.report, best.bufKB, best.ghz = r, buf, ghz
				}
			}
		}
		if best.report == nil {
			fmt.Printf("  %-10s no real-time design in the sweep\n", res.name)
			continue
		}
		fmt.Printf("  %-10s %dkB buffers @ %.2f GHz → %.1f fps, %.4f mm², %.1f mW, %.2f mJ/frame\n",
			res.name, best.bufKB, best.ghz, best.report.FPS,
			best.report.AreaMM2, best.report.PowerMW, best.report.EnergyMJPerFrame)
	}

	// The energy story of Table 5, in one line per platform.
	fmt.Println("\nenergy per frame at 1080p (paper Table 5):")
	accel, err := sslic.SimulateAccelerator(sslic.DefaultAcceleratorConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Tesla K20 (normalized): ~867 mJ    Tegra K1 (normalized): ~407 mJ    this accelerator: %.1f mJ\n",
		accel.EnergyMJPerFrame)
	fmt.Printf("  → %.0f× more efficient than the mobile GPU\n", 407/accel.EnergyMJPerFrame)
}
