// Video pipeline: a 30 fps stream through both halves of the
// reproduction. The software half segments a synthetic panning scene
// frame by frame, warm-starting each frame from the previous centers so
// three iterations suffice instead of ten, and reports the temporal
// consistency of the resulting superpixels. The hardware half checks the
// same workload against the calibrated accelerator model's real-time
// budget (paper Table 4).
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"
	"time"

	"sslic"
	"sslic/internal/dataset"
	"sslic/internal/video"
)

const frames = 8

func main() {
	stream, err := video.NewStream(dataset.DefaultConfig(), 99, video.Pan, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("software pipeline (warm-started S-SLIC, K=900, pan 3 px/frame):")
	var prev *sslic.Segmentation
	var prevLabels []int32
	var coldTime, warmTime time.Duration
	w, h := stream.Size()
	for f := 0; f < frames; f++ {
		frame, gtFrame, err := stream.Frame(f)
		if err != nil {
			log.Fatal(err)
		}
		img := frame.ToGoImage()

		opt := sslic.DefaultOptions(900)
		if prev != nil {
			opt.WarmStart = prev
			opt.Iterations = 3 // temporal coherence: a few iterations suffice
		}
		t0 := time.Now()
		seg, err := sslic.Segment(img, opt)
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		if prev == nil {
			coldTime = dt
		} else {
			warmTime += dt
		}

		gt, err := sslic.NewGroundTruth(gtFrame.W, gtFrame.H, gtFrame.Labels)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sslic.Evaluate(img, seg, gt)
		if err != nil {
			log.Fatal(err)
		}

		tc := "    -"
		if prevLabels != nil {
			dxc, _ := stream.Displacement(f)
			dxp, _ := stream.Displacement(f - 1)
			c, err := temporalConsistency(prevLabels, seg.Labels, w, h, dxc-dxp)
			if err != nil {
				log.Fatal(err)
			}
			tc = fmt.Sprintf("%.3f", c)
		}
		kind := "cold"
		if prev != nil {
			kind = "warm"
		}
		fmt.Printf("  frame %d (%s): %v, USE %.4f, BR %.4f, consistency %s\n",
			f, kind, dt.Round(time.Millisecond), m.UndersegmentationError, m.BoundaryRecall, tc)
		prev = seg
		prevLabels = append([]int32(nil), seg.Labels...)
	}
	avgWarm := warmTime / (frames - 1)
	fmt.Printf("cold start %v; warm frames average %v (%.1f× faster)\n\n",
		coldTime.Round(time.Millisecond), avgWarm.Round(time.Millisecond),
		float64(coldTime)/float64(avgWarm))

	// Hardware budget for the same stream at full HD.
	fmt.Println("accelerator budget (Table 4 design points):")
	for _, point := range []struct {
		name string
		cfg  sslic.AcceleratorConfig
	}{
		{"1080p, 4kB buffers, 1.6GHz", sslic.DefaultAcceleratorConfig()},
		{"720p, 1kB buffers, 1.25GHz", sslic.AcceleratorConfig{Width: 1280, Height: 768, BufferKB: 1, ClockGHz: 1.25}},
		{"VGA, 1kB buffers, 0.9GHz", sslic.AcceleratorConfig{Width: 640, Height: 480, BufferKB: 1, ClockGHz: 0.9}},
	} {
		r, err := sslic.SimulateAccelerator(point.cfg)
		if err != nil {
			log.Fatal(err)
		}
		status := "MISSES 30 fps"
		if r.RealTime {
			status = "real-time"
		}
		fmt.Printf("  %-28s %.1f ms/frame, %.1f fps (%s), %.1f mW, %.2f mJ/frame\n",
			point.name, r.LatencyMS, r.FPS, status, r.PowerMW, r.EnergyMJPerFrame)
	}
}

// temporalConsistency mirrors video.TemporalConsistency on raw label
// slices (the facade exposes labels, not internal label maps).
func temporalConsistency(prev, cur []int32, w, h, dx int) (float64, error) {
	const stride, pairOff = 5, 4
	var total, agree int
	for y := 0; y < h-pairOff; y += stride {
		for x := 0; x < w-pairOff; x += stride {
			px := x + dx
			if px < 0 || px+pairOff >= w {
				continue
			}
			samePrev := prev[y*w+px] == prev[(y+pairOff)*w+px+pairOff]
			sameCur := cur[y*w+x] == cur[(y+pairOff)*w+x+pairOff]
			total++
			if samePrev == sameCur {
				agree++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("no sample pairs")
	}
	return float64(agree) / float64(total), nil
}
