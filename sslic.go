// Package sslic is the public API of the S-SLIC reproduction: superpixel
// segmentation with the SLIC algorithm of Achanta et al. and the
// Subsampled SLIC (S-SLIC) variant of Hong et al. (DAC 2016), plus the
// quality metrics and the calibrated accelerator model from the paper's
// evaluation.
//
// Quick start:
//
//	seg, err := sslic.Segment(img, sslic.DefaultOptions(900))
//	out := seg.Overlay(img, color.RGBA{R: 255, A: 255})
//
// The heavy lifting lives in internal packages (internal/slic,
// internal/sslic, internal/hw, ...); this package adapts them to standard
// library image types.
package sslic

import (
	"fmt"
	"image"
	"image/color"

	"sslic/internal/imgio"
	"sslic/internal/slic"
	islic "sslic/internal/sslic"
)

// Method selects the segmentation algorithm.
type Method int

const (
	// SSLICPPA is Subsampled SLIC with the pixel perspective architecture
	// — the paper's contribution and the default.
	SSLICPPA Method = iota
	// SSLICCPA is Subsampled SLIC with the center perspective
	// architecture.
	SSLICCPA
	// SLIC is the original windowed algorithm of Achanta et al.
	SLIC
)

// String names the method.
func (m Method) String() string {
	switch m {
	case SSLICCPA:
		return "S-SLIC/CPA"
	case SLIC:
		return "SLIC"
	default:
		return "S-SLIC/PPA"
	}
}

// Options configure Segment. Use DefaultOptions and adjust.
type Options struct {
	// K is the requested superpixel count.
	K int
	// Method selects the algorithm (default S-SLIC with PPA).
	Method Method
	// Compactness is the m factor of the SLIC distance (Equation 5);
	// typical values are 1-40, default 10.
	Compactness float64
	// Iterations is the number of full-image-equivalent iterations
	// (default 10).
	Iterations int
	// SubsampleRatio is the S-SLIC pixel subsampling ratio: 1 disables
	// subsampling, 0.5 and 0.25 are the paper's variants. Ignored for
	// Method == SLIC.
	SubsampleRatio float64
	// FixedPointBits, when nonzero, quantizes the float64 datapath to the
	// reduced precision of the paper's §6.1 exploration (8 is the
	// hardware's choice; 0 = float64). For the full integer hardware
	// datapath use FixedDatapath instead.
	FixedPointBits int
	// FixedDatapath runs the paper's integer LUT datapath in the hot
	// loop: 8-bit Lab codes from the gamma/cube-root LUTs and integer
	// distance arithmetic. S-SLIC PPA only; mutually exclusive with
	// FixedPointBits.
	FixedDatapath bool
	// Preemptive composes the Preemptive-SLIC per-cluster early halt with
	// subsampling (paper §8's suggested combination).
	Preemptive bool
	// TileWorkers parallelizes the S-SLIC cluster-update pass across
	// goroutines, partitioning each frame into row bands: 0 or 1 serial,
	// n > 1 that many workers, -1 all CPUs. Labels are deterministic per
	// worker count; on the fixed datapath the whole result is
	// bit-identical for every worker count.
	TileWorkers int
	// AdaptiveCompactness enables the SLICO variant (parameter-free
	// per-cluster compactness normalization). Supported for Method SLIC.
	AdaptiveCompactness bool
	// WarmStart seeds the superpixel centers from a previous
	// segmentation of a same-sized frame — the temporal-coherence path
	// for video, where a couple of iterations suffice after the first
	// frame. Supported for the PPA method; both runs must use the same
	// image size and K.
	WarmStart *Segmentation
}

// DefaultOptions returns the paper's evaluation settings for k
// superpixels: S-SLIC(0.5) on the PPA with m=10 and 10 iterations.
func DefaultOptions(k int) Options {
	return Options{
		K:              k,
		Method:         SSLICPPA,
		Compactness:    10,
		Iterations:     10,
		SubsampleRatio: 0.5,
	}
}

// Segmentation is the result of Segment: a dense label per pixel plus
// the run's statistics.
type Segmentation struct {
	// W, H are the image dimensions.
	W, H int
	// Labels holds one superpixel index per pixel, row-major, in
	// [0, NumSegments).
	Labels []int32
	// NumSegments is the number of distinct superpixels.
	NumSegments int
	// Iterations and DistanceCalcs summarize the work performed.
	Iterations    int
	DistanceCalcs int64
	// Residuals records the mean per-center movement after every pass,
	// the convergence signal of Figure 1's termination test.
	Residuals []float64

	lm      *imgio.LabelMap
	centers []slic.Center
}

// Segment computes a superpixel segmentation of img.
func Segment(img image.Image, opt Options) (*Segmentation, error) {
	if img == nil {
		return nil, fmt.Errorf("sslic: nil image")
	}
	if opt.WarmStart != nil && opt.Method != SSLICPPA {
		return nil, fmt.Errorf("sslic: warm start requires the S-SLIC PPA method")
	}
	if opt.AdaptiveCompactness && opt.Method != SLIC {
		return nil, fmt.Errorf("sslic: adaptive compactness (SLICO) requires the SLIC method")
	}
	if opt.FixedDatapath && opt.Method != SSLICPPA {
		return nil, fmt.Errorf("sslic: the fixed datapath requires the S-SLIC PPA method")
	}
	im := imgio.FromGoImage(img)
	switch opt.Method {
	case SLIC:
		p := slic.DefaultParams(opt.K)
		applyCommon(&p.Compactness, &p.MaxIters, opt)
		p.AdaptiveCompactness = opt.AdaptiveCompactness
		if opt.FixedPointBits > 0 {
			p.Datapath = slic.NewDatapath(opt.FixedPointBits)
		}
		r, err := slic.Segment(im, p)
		if err != nil {
			return nil, err
		}
		return wrap(r.Labels, r.Centers, r.Stats.Iterations, r.Stats.DistanceCalcs, r.Stats.MoveHistory), nil
	default:
		p := islic.DefaultParams(opt.K, ratioOrDefault(opt.SubsampleRatio))
		applyCommon(&p.Compactness, &p.FullIters, opt)
		if opt.Method == SSLICCPA {
			p.Arch = islic.CPA
		}
		if opt.FixedPointBits > 0 {
			p.Quantization = slic.NewDatapath(opt.FixedPointBits)
		}
		if opt.FixedDatapath {
			p.Datapath = islic.Fixed
		}
		p.Preemptive = opt.Preemptive
		p.TileWorkers = opt.TileWorkers
		if opt.WarmStart != nil {
			p.InitialCenters = opt.WarmStart.centers
		}
		r, err := islic.Segment(im, p)
		if err != nil {
			return nil, err
		}
		return wrap(r.Labels, r.Centers, r.Stats.Iterations, r.Stats.DistanceCalcs, r.Stats.MoveHistory), nil
	}
}

func ratioOrDefault(r float64) float64 {
	if r == 0 {
		return 0.5
	}
	return r
}

func applyCommon(compactness *float64, iters *int, opt Options) {
	if opt.Compactness > 0 {
		*compactness = opt.Compactness
	}
	if opt.Iterations > 0 {
		*iters = opt.Iterations
	}
}

func wrap(lm *imgio.LabelMap, centers []slic.Center, iters int, calcs int64, residuals []float64) *Segmentation {
	return &Segmentation{
		W:             lm.W,
		H:             lm.H,
		Labels:        lm.Labels,
		NumSegments:   lm.NumRegions(),
		Iterations:    iters,
		DistanceCalcs: calcs,
		Residuals:     residuals,
		lm:            lm,
		centers:       centers,
	}
}

// Label returns the superpixel index of pixel (x, y).
func (s *Segmentation) Label(x, y int) int32 { return s.lm.At(x, y) }

// BoundaryMask returns a W*H mask marking pixels that touch a different
// superpixel.
func (s *Segmentation) BoundaryMask() []bool { return s.lm.BoundaryMask() }

// Overlay draws the superpixel boundaries over img in the given color.
func (s *Segmentation) Overlay(img image.Image, c color.RGBA) *image.RGBA {
	im := imgio.FromGoImage(img)
	return imgio.Overlay(im, s.lm, c.R, c.G, c.B).ToGoImage()
}

// MeanColor renders every superpixel filled with its mean color — the
// abstraction downstream vision stages consume.
func (s *Segmentation) MeanColor(img image.Image) *image.RGBA {
	im := imgio.FromGoImage(img)
	return imgio.MeanColor(im, s.lm).ToGoImage()
}

// ColorizeLabels renders each superpixel in a deterministic pseudo-random
// color for inspection.
func (s *Segmentation) ColorizeLabels() *image.RGBA {
	return imgio.LabelColors(s.lm).ToGoImage()
}

// RegionSizes returns the pixel count of every superpixel.
func (s *Segmentation) RegionSizes() map[int32]int { return s.lm.RegionSizes() }

// AdjacencyGraph returns, for every superpixel, the sorted set of
// neighboring superpixels (4-connectivity) — the region adjacency graph
// that segmentation-based vision pipelines build on.
func (s *Segmentation) AdjacencyGraph() map[int32][]int32 {
	adj := make(map[int32]map[int32]struct{})
	touch := func(a, b int32) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = make(map[int32]struct{})
		}
		adj[a][b] = struct{}{}
	}
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			v := s.lm.At(x, y)
			if x+1 < s.W {
				n := s.lm.At(x+1, y)
				touch(v, n)
				touch(n, v)
			}
			if y+1 < s.H {
				n := s.lm.At(x, y+1)
				touch(v, n)
				touch(n, v)
			}
		}
	}
	out := make(map[int32][]int32, len(adj))
	for v, set := range adj {
		list := make([]int32, 0, len(set))
		for n := range set {
			list = append(list, n)
		}
		sortInt32s(list)
		out[v] = list
	}
	return out
}

func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FromLabels wraps an existing dense label map (e.g. loaded from disk or
// produced by another tool) as a Segmentation so the metric and
// rendering helpers apply to it. Labels must be non-negative.
func FromLabels(w, h int, labels []int32) (*Segmentation, error) {
	if len(labels) != w*h {
		return nil, fmt.Errorf("sslic: %d labels for %dx%d image", len(labels), w, h)
	}
	lm := imgio.NewLabelMap(w, h)
	copy(lm.Labels, labels)
	for i, v := range lm.Labels {
		if v < 0 {
			return nil, fmt.Errorf("sslic: negative label at pixel %d", i)
		}
	}
	return wrap(lm, nil, 0, 0, nil), nil
}
