module sslic

go 1.22
