package sslic

// Benchmarks regenerating the paper's evaluation, one per table and
// figure (run with `go test -bench=. -benchmem`). The Benchmark*
// functions exercise the same code paths as cmd/sslic-bench; per-op cost
// is dominated by the experiment itself, so b.N loops re-run the whole
// experiment. Quality experiments use the trimmed Quick corpus to keep
// benchmark wall time sane; cmd/sslic-bench runs them at paper scale.

import (
	"context"
	"image"
	"runtime"
	"testing"

	"sslic/internal/bench"
	"sslic/internal/dataset"
	"sslic/internal/hw"
	"sslic/internal/pipeline"
	"sslic/internal/slic"
	islic "sslic/internal/sslic"
	"sslic/internal/video"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := bench.QuickOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a regenerates the USE-vs-runtime curves of Figure 2a.
func BenchmarkFig2a(b *testing.B) { runExperiment(b, "fig2a") }

// BenchmarkFig2b regenerates the boundary-recall-vs-runtime curves of
// Figure 2b.
func BenchmarkFig2b(b *testing.B) { runExperiment(b, "fig2b") }

// BenchmarkTable1 regenerates the phase-time breakdown of Table 1.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates the CPA/PPA bandwidth and op analysis of
// Table 2.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkBitWidth regenerates the §6.1 bit-width exploration.
func BenchmarkBitWidth(b *testing.B) { runExperiment(b, "bitwidth") }

// BenchmarkTable3 regenerates the Cluster Update Unit DSE of Table 3.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig6 regenerates the buffer-size sweep of Figure 6.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable4 regenerates the resolution summary of Table 4.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5 regenerates the GPU comparison of Table 5.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkAblationSchemes regenerates the subsampling-scheme ablation.
func BenchmarkAblationSchemes(b *testing.B) { runExperiment(b, "ablation-schemes") }

// BenchmarkAblationArch regenerates the PPA-vs-CPA quality ablation.
func BenchmarkAblationArch(b *testing.B) { runExperiment(b, "ablation-arch") }

// BenchmarkAblationPreemptive regenerates the preemptive-composition
// ablation.
func BenchmarkAblationPreemptive(b *testing.B) { runExperiment(b, "ablation-preemptive") }

// --- Micro-benchmarks of the core kernels ---

var benchSample *dataset.Sample

func sample(b *testing.B) *dataset.Sample {
	b.Helper()
	if benchSample == nil {
		s, err := dataset.Generate(dataset.DefaultConfig(), 1)
		if err != nil {
			b.Fatal(err)
		}
		benchSample = s
	}
	return benchSample
}

// BenchmarkSegmentSLIC measures reference SLIC on one Berkeley-sized
// frame (K=900, 10 iterations).
func BenchmarkSegmentSLIC(b *testing.B) {
	s := sample(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slic.Segment(s.Image, slic.DefaultParams(900)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentSSLICHalf measures S-SLIC(0.5) on the same frame.
func BenchmarkSegmentSSLICHalf(b *testing.B) {
	s := sample(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := islic.Segment(s.Image, islic.DefaultParams(900, 0.5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentSSLICQuarter measures S-SLIC(0.25).
func BenchmarkSegmentSSLICQuarter(b *testing.B) {
	s := sample(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := islic.Segment(s.Image, islic.DefaultParams(900, 0.25)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColorConversion measures the reference float64 RGB→Lab path
// on one frame.
func BenchmarkColorConversion(b *testing.B) {
	s := sample(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slic.ToLab(s.Image)
	}
}

// BenchmarkAcceleratorSim measures one frame of the analytic hardware
// model.
func BenchmarkAcceleratorSim(b *testing.B) {
	cfg := hw.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacadeSegment measures the public API end to end on a small
// frame.
func BenchmarkFacadeSegment(b *testing.B) {
	img := image.NewRGBA(image.Rect(0, 0, 160, 120))
	for i := range img.Pix {
		img.Pix[i] = uint8(i * 31)
	}
	opt := DefaultOptions(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Segment(img, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtDVFS regenerates the clock/voltage scaling extension.
func BenchmarkExtDVFS(b *testing.B) { runExperiment(b, "ext-dvfs") }

// BenchmarkExtBandwidth regenerates the DRAM bandwidth sensitivity
// extension.
func BenchmarkExtBandwidth(b *testing.B) { runExperiment(b, "ext-bandwidth") }

// BenchmarkExtMulticore regenerates the core-count scaling extension.
func BenchmarkExtMulticore(b *testing.B) { runExperiment(b, "ext-multicore") }

// BenchmarkExtFuncSim regenerates the functional-vs-analytic model
// cross-check.
func BenchmarkExtFuncSim(b *testing.B) { runExperiment(b, "ext-funcsim") }

// BenchmarkExtConvergence regenerates the residual-decay-per-scheme
// extension.
func BenchmarkExtConvergence(b *testing.B) { runExperiment(b, "ext-convergence") }

// BenchmarkFuncSimFrame measures the bit-accurate pipeline on a small
// frame end to end.
func BenchmarkFuncSimFrame(b *testing.B) {
	cfg := hw.DefaultConfig()
	cfg.Width, cfg.Height, cfg.K = 192, 128, 96
	cfg.BufferBytesPerChannel = 1024
	dcfg := dataset.DefaultConfig()
	dcfg.W, dcfg.H = 192, 128
	dcfg.Regions = 10
	s, err := dataset.Generate(dcfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := hw.NewFuncSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Run(s.Image); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtPower regenerates the power-breakdown extension.
func BenchmarkExtPower(b *testing.B) { runExperiment(b, "ext-power") }

// BenchmarkExtResolutionQuality regenerates the cross-resolution quality
// extension.
func BenchmarkExtResolutionQuality(b *testing.B) { runExperiment(b, "ext-resolution-quality") }

// BenchmarkExtTemporal regenerates the warm-start stream extension.
func BenchmarkExtTemporal(b *testing.B) { runExperiment(b, "ext-temporal") }

// BenchmarkExtKSweep regenerates the quality-vs-K extension.
func BenchmarkExtKSweep(b *testing.B) { runExperiment(b, "ext-ksweep") }

// BenchmarkAblationSLICO regenerates the SLIC-vs-SLICO ablation.
func BenchmarkAblationSLICO(b *testing.B) { runExperiment(b, "ablation-slico") }

// BenchmarkSegmentSSLICParallel measures the multi-worker PPA pass on
// one Berkeley-sized frame.
func BenchmarkSegmentSSLICParallel(b *testing.B) {
	s := sample(b)
	p := islic.DefaultParams(900, 0.5)
	p.TileWorkers = -1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := islic.Segment(s.Image, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThroughput compares the sequential frame loop against
// the concurrent frame pipeline on the same cold-start workload and
// reports frames/sec. On a multi-core host the pipeline with NumCPU
// workers should beat the sequential loop by well over 1.5×; on one core
// only the source/sink overlap remains.
func BenchmarkPipelineThroughput(b *testing.B) {
	const frames = 8
	cfg := dataset.DefaultConfig()
	cfg.W, cfg.H = 160, 120
	cfg.Regions = 12
	stream, err := video.NewStream(cfg, 5, video.Pan, 3)
	if err != nil {
		b.Fatal(err)
	}
	params := islic.DefaultParams(64, 0.5)

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for f := 0; f < frames; f++ {
				img, _, err := stream.Frame(f)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := islic.Segment(img, params); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*frames)/b.Elapsed().Seconds(), "frames/sec")
	})

	b.Run("pipeline", func(b *testing.B) {
		b.ReportAllocs()
		w, h := stream.Size()
		for i := 0; i < b.N; i++ {
			var pl *pipeline.Pipeline
			pl, err := pipeline.New(pipeline.Config{
				Width: w, Height: h, Frames: frames,
				Workers: runtime.GOMAXPROCS(0),
				Params:  params,
			}, stream.FrameInto, func(r *pipeline.Result) error {
				pl.Recycle(r)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := pl.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N*frames)/b.Elapsed().Seconds(), "frames/sec")
	})
}
