package sslic

import (
	"fmt"
	"image"

	"sslic/internal/imgio"
	"sslic/internal/metrics"
)

// GroundTruth wraps a reference segmentation (e.g. from an annotated
// dataset) for metric evaluation.
type GroundTruth struct {
	lm *imgio.LabelMap
}

// NewGroundTruth builds a ground truth from a row-major label slice.
func NewGroundTruth(w, h int, labels []int32) (*GroundTruth, error) {
	if len(labels) != w*h {
		return nil, fmt.Errorf("sslic: %d labels for %dx%d image", len(labels), w, h)
	}
	lm := imgio.NewLabelMap(w, h)
	copy(lm.Labels, labels)
	return &GroundTruth{lm: lm}, nil
}

// Metrics bundles the standard superpixel quality measures of the
// paper's evaluation (§3).
type Metrics struct {
	// UndersegmentationError measures leakage across ground-truth
	// boundaries (lower is better; Figure 2a).
	UndersegmentationError float64
	// BoundaryRecall measures how much of the ground-truth boundary the
	// superpixel boundaries recover within 2 pixels (higher is better;
	// Figure 2b).
	BoundaryRecall float64
	// AchievableSegmentationAccuracy is the oracle labeling accuracy.
	AchievableSegmentationAccuracy float64
	// ExplainedVariation is the color variance captured by superpixel
	// means.
	ExplainedVariation float64
	// Compactness is the area-weighted isoperimetric quotient.
	Compactness float64
}

// Evaluate computes the quality of s against gt on the source image.
func Evaluate(img image.Image, s *Segmentation, gt *GroundTruth) (Metrics, error) {
	if s == nil || gt == nil {
		return Metrics{}, fmt.Errorf("sslic: nil segmentation or ground truth")
	}
	im := imgio.FromGoImage(img)
	sum, err := metrics.Evaluate(im, s.lm, gt.lm)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{
		UndersegmentationError:         sum.USE,
		BoundaryRecall:                 sum.BoundaryRec,
		AchievableSegmentationAccuracy: sum.ASA,
		ExplainedVariation:             sum.ExplainedVar,
		Compactness:                    sum.Compactness,
	}, nil
}
