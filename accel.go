package sslic

import (
	"sslic/internal/hw"
)

// AcceleratorConfig selects a hardware design point for the calibrated
// 16nm accelerator model (paper §4-§7). The zero value is not valid; use
// DefaultAcceleratorConfig.
type AcceleratorConfig struct {
	// Width, Height, K describe the workload.
	Width, Height, K int
	// BufferKB is the scratchpad size per channel in kilobytes (the
	// paper's best HD design uses 4).
	BufferKB int
	// Passes is the number of cluster-update passes (paper: 9).
	Passes int
	// SubsampleRatio scales the pixels visited per pass.
	SubsampleRatio float64
	// ClockGHz overrides the 1.6 GHz synthesis target when nonzero
	// (the paper scales the clock down at lower resolutions).
	ClockGHz float64
}

// DefaultAcceleratorConfig is the paper's best full-HD design point.
func DefaultAcceleratorConfig() AcceleratorConfig {
	return AcceleratorConfig{
		Width: 1920, Height: 1080, K: 5000,
		BufferKB:       4,
		Passes:         9,
		SubsampleRatio: 1,
	}
}

// AcceleratorReport summarizes one simulated frame.
type AcceleratorReport struct {
	// LatencyMS is the frame latency in milliseconds; FPS its inverse.
	LatencyMS float64
	FPS       float64
	// RealTime reports whether the design sustains 30 fps.
	RealTime bool
	// AreaMM2, PowerMW and EnergyMJPerFrame are the physical estimates.
	AreaMM2          float64
	PowerMW          float64
	EnergyMJPerFrame float64
	// TrafficMB is the external memory traffic per frame.
	TrafficMB float64
}

// SimulateAccelerator runs the calibrated cycle model for one frame.
func SimulateAccelerator(cfg AcceleratorConfig) (*AcceleratorReport, error) {
	// Zero-valued fields fall back to the paper's defaults; any other
	// value (including invalid ones) passes through to hw.Config
	// validation.
	hc := hw.DefaultConfig()
	if cfg.Width != 0 {
		hc.Width = cfg.Width
	}
	if cfg.Height != 0 {
		hc.Height = cfg.Height
	}
	if cfg.K != 0 {
		hc.K = cfg.K
	}
	if cfg.BufferKB != 0 {
		hc.BufferBytesPerChannel = cfg.BufferKB * 1024
	}
	if cfg.Passes != 0 {
		hc.Passes = cfg.Passes
	}
	if cfg.SubsampleRatio != 0 {
		hc.SubsampleRatio = cfg.SubsampleRatio
	}
	if cfg.ClockGHz != 0 {
		hc.Tech.ClockHz = cfg.ClockGHz * 1e9
	}
	r, err := hw.Simulate(hc)
	if err != nil {
		return nil, err
	}
	return &AcceleratorReport{
		LatencyMS:        r.TotalTime * 1e3,
		FPS:              r.FPS,
		RealTime:         r.RealTime,
		AreaMM2:          r.AreaMM2,
		PowerMW:          r.PowerWatts * 1e3,
		EnergyMJPerFrame: r.EnergyPerFrame * 1e3,
		TrafficMB:        float64(r.TrafficBytes) / 1e6,
	}, nil
}
